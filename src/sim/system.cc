#include "src/sim/system.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hsim {

System::System() : System(Config{}) {}

System::System(const Config& config) : config_(config) {
  cpus_.resize(static_cast<size_t>(std::max(1, config_.ncpus)));
  if (config_.sharded) {
    shards_ = std::make_unique<ShardSet>(&tree_, static_cast<int>(cpus_.size()),
                                         config_.steal_window);
  }
}

bool System::IsOnCpu(ThreadId thread) const {
  for (const Cpu& c : cpus_) {
    if (c.running == thread) {
      return true;
    }
  }
  return false;
}

System::~System() = default;

System::Thread& System::ThreadRef(ThreadId id) {
  assert(id < threads_.size());
  return *threads_[id];
}

const System::Thread& System::ThreadRef(ThreadId id) const {
  assert(id < threads_.size());
  return *threads_[id];
}

hscommon::StatusOr<ThreadId> System::CreateThread(std::string name, NodeId leaf,
                                                  const ThreadParams& params,
                                                  std::unique_ptr<Workload> workload,
                                                  Time start_time) {
  const ThreadId id = threads_.size();
  if (auto s = tree_.AttachThread(id, leaf, params); !s.ok()) {
    return s;
  }
  auto t = std::make_unique<Thread>();
  t->id = id;
  t->name = std::move(name);
  t->workload = std::move(workload);
  if (tracer_ != nullptr) {
    tracer_->RecordThreadName(now_, leaf, id, t->name);
  }
  threads_.push_back(std::move(t));
  Thread* raw = threads_.back().get();
  events_.At(std::max(start_time, now_), [this, raw] { WakeThread(*raw); });
  return id;
}

bool System::RefillBurst(Thread& t, int cpu) {
  if (t.burst_deadline != 0) {
    // The deadline-stamped burst that just completed (at now_): settle its job's
    // deadline accounting exactly once, before the workload releases the next action.
    ++t.stats.deadline_jobs;
    if (now_ > t.burst_deadline) {
      const Time tardiness = now_ - t.burst_deadline;
      ++t.stats.deadline_misses;
      t.stats.tardiness.Add(static_cast<double>(tardiness));
      if (tracer_ != nullptr) {
        const auto leaf = tree_.LeafOf(t.id);
        tracer_->RecordDeadlineMiss(now_, leaf.ok() ? *leaf : hsfq::kInvalidNode, t.id,
                                    tardiness, static_cast<uint32_t>(cpu));
      }
    }
    t.burst_deadline = 0;
  }
  while (t.burst_remaining == 0) {
    const WorkloadAction action = t.workload->NextAction(now_);
    switch (action.kind) {
      case WorkloadAction::Kind::kCompute:
        assert(action.work > 0);
        t.burst_remaining = action.work;
        t.burst_deadline = action.deadline;
        break;
      case WorkloadAction::Kind::kSleep: {
        if (action.until <= now_) {
          continue;  // zero-length sleep: ask for the next action immediately
        }
        Thread* raw = &t;
        t.wake_event = events_.At(action.until, [this, raw] {
          raw->wake_event = kInvalidEvent;
          WakeThread(*raw);
        });
        return false;
      }
      case WorkloadAction::Kind::kLock:
        if (!LockMutex(action.mutex, t)) {
          return false;  // enqueued as a waiter; UnlockMutex wakes it with ownership
        }
        break;
      case WorkloadAction::Kind::kUnlock:
        UnlockMutex(action.mutex, t);
        break;
      case WorkloadAction::Kind::kExit:
        t.stats.exited = true;
        return false;
    }
  }
  return true;
}

void System::ApplyInversionRemedy(ThreadId holder, ThreadId waiter) {
  if (!config_.inversion_remedy) {
    return;
  }
  const auto leaf_h = tree_.LeafOf(holder);
  const auto leaf_w = tree_.LeafOf(waiter);
  assert(leaf_h.ok() && leaf_w.ok());
  if (*leaf_h != *leaf_w) {
    ++cross_class_blocks_;  // cross-class synchronization: no remedy (paper §4)
    return;
  }
  tree_.LeafSchedulerOf(*leaf_h)->OnResourceBlocked(holder, waiter);
}

void System::RevokeInversionRemedy(ThreadId holder, ThreadId waiter) {
  if (!config_.inversion_remedy) {
    return;
  }
  const auto leaf_h = tree_.LeafOf(holder);
  const auto leaf_w = tree_.LeafOf(waiter);
  if (!leaf_h.ok() || !leaf_w.ok() || *leaf_h != *leaf_w) {
    return;
  }
  tree_.LeafSchedulerOf(*leaf_h)->OnResourceReleased(holder, waiter);
}

MutexId System::CreateMutex() {
  mutexes_.emplace_back();
  return static_cast<MutexId>(mutexes_.size() - 1);
}

const MutexStats& System::StatsOfMutex(MutexId mutex) const {
  return mutexes_.at(mutex).stats;
}

ThreadId System::HolderOf(MutexId mutex) const { return mutexes_.at(mutex).holder; }

void System::ReportDiagnostic(std::string what) {
  ++diagnostic_count_;
  if (diagnostics_.size() < kMaxDiagnostics) {
    diagnostics_.push_back({now_, std::move(what)});
  }
}

bool System::LockMutex(MutexId id, Thread& t) {
  Mutex& m = mutexes_.at(id);
  if (m.holder == t.id) {
    // Recursive locking is not modelled; survive it as a no-op re-acquire so a faulty
    // (or fault-perturbed) workload script degrades into a diagnostic, not an abort.
    ReportDiagnostic("recursive lock of mutex " + std::to_string(id) + " by thread " +
                     std::to_string(t.id));
    return true;
  }
  if (m.holder == hsfq::kInvalidThread) {
    m.holder = t.id;
    ++m.stats.acquisitions;
    return true;
  }
  m.waiters.push_back(t.id);
  ++m.stats.contentions;
  // Priority-inversion fault model: a "faulted" holder pins the lock by growing its
  // current critical section. Safe to apply mid-simulation — per-slice stop times are
  // recomputed from burst_remaining every iteration of the dispatch loop.
  if (fault_hooks_ != nullptr) {
    const Work pin = std::max<Work>(0, fault_hooks_->OnMutexPin(m.holder, t.id, now_));
    if (pin > 0) {
      ThreadRef(m.holder).burst_remaining += pin;
    }
  }
  ApplyInversionRemedy(m.holder, t.id);
  return false;
}

void System::UnlockMutex(MutexId id, Thread& t) {
  Mutex& m = mutexes_.at(id);
  if (m.holder != t.id) {
    // Unlock by a non-holder: reachable when a fault (thread crash with hand-off)
    // already released the mutex out from under the scripted holder. Report and keep
    // the mutex state untouched rather than corrupting the waiter queue.
    ReportDiagnostic("unlock of mutex " + std::to_string(id) + " by thread " +
                     std::to_string(t.id) + " which does not hold it (holder: " +
                     (m.holder == hsfq::kInvalidThread ? std::string("none")
                                                       : std::to_string(m.holder)) +
                     ")");
    return;
  }
  // Undo every remedy aimed at the departing holder.
  for (ThreadId w : m.waiters) {
    RevokeInversionRemedy(t.id, w);
  }
  if (m.waiters.empty()) {
    m.holder = hsfq::kInvalidThread;
    return;
  }
  // Hand ownership to the longest waiter and re-apply remedies from the rest.
  const ThreadId next = m.waiters.front();
  m.waiters.pop_front();
  m.holder = next;
  ++m.stats.acquisitions;
  for (ThreadId w : m.waiters) {
    ApplyInversionRemedy(next, w);
  }
  WakeThread(ThreadRef(next));
}

void System::WakeThread(Thread& t) {
  if (t.stats.exited) {
    return;
  }
  if (fault_hooks_ != nullptr) {
    const Time delay = fault_hooks_->OnWakeupDelivery(t.id, now_);
    if (delay > 0) {
      // Postponed delivery flows through the event queue, so the perturbed run stays
      // deterministic; the redelivery is direct (not re-intercepted).
      Thread* raw = &t;
      events_.At(now_ + delay, [this, raw] { WakeThreadDirect(*raw); });
      return;
    }
  }
  WakeThreadDirect(t);
}

void System::WakeThreadDirect(Thread& t) {
  if (t.stats.exited) {
    return;
  }
  if (t.suspended) {
    t.wake_pending = true;
    return;
  }
  if (t.runnable) {
    // A wake raced with (or was injected on top of) an already-runnable thread; with
    // fault injection in play this is survivable, not a programming error.
    ReportDiagnostic("spurious wakeup of runnable thread " + std::to_string(t.id));
    return;
  }
  if (t.burst_remaining == 0 && !RefillBurst(t)) {
    return;  // the workload went straight back to sleep or exited
  }
  t.runnable = true;
  ++t.stats.wakeups;
  t.last_wake = now_;
  t.awaiting_first_dispatch = true;
  tree_.SetRun(t.id, now_);
}

hscommon::Status System::Suspend(ThreadId thread) {
  Thread& t = ThreadRef(thread);
  if (IsOnCpu(thread)) {
    // A quantum can be left in flight across a RunUntil horizon; suspending the
    // running thread there would corrupt the open slice. Report instead of aborting.
    ReportDiagnostic("suspend of running thread " + std::to_string(thread) + " refused");
    return hscommon::FailedPrecondition("thread " + std::to_string(thread) +
                                        " is mid-slice; suspend it from a scripted event");
  }
  if (t.suspended || t.stats.exited) {
    return hscommon::Status::Ok();
  }
  t.suspended = true;
  if (t.runnable) {
    tree_.Sleep(thread, now_);
    t.runnable = false;
  }
  return hscommon::Status::Ok();
}

hscommon::Status System::Kill(ThreadId thread) {
  Thread& t = ThreadRef(thread);
  if (t.stats.exited) {
    return hscommon::Status::Ok();
  }
  if (IsOnCpu(thread)) {
    return hscommon::FailedPrecondition("thread " + std::to_string(thread) +
                                        " is mid-slice; kill it from a scripted event");
  }
  // Robust-mutex semantics: hand held mutexes to their longest waiter and drop out of
  // any waiter queue, so a crash cannot strand the rest of the scenario.
  for (size_t i = 0; i < mutexes_.size(); ++i) {
    Mutex& m = mutexes_[i];
    if (m.holder == thread) {
      ReportDiagnostic("thread " + std::to_string(thread) + " killed while holding mutex " +
                       std::to_string(i) + "; ownership handed off");
      UnlockMutex(static_cast<MutexId>(i), t);
    } else {
      const auto it = std::find(m.waiters.begin(), m.waiters.end(), thread);
      if (it != m.waiters.end()) {
        m.waiters.erase(it);
        RevokeInversionRemedy(m.holder, thread);
      }
    }
  }
  if (t.wake_event != kInvalidEvent) {
    events_.Cancel(t.wake_event);
    t.wake_event = kInvalidEvent;
  }
  if (t.runnable) {
    tree_.Sleep(thread, now_);
    t.runnable = false;
  }
  t.wake_pending = false;
  t.burst_remaining = 0;
  t.burst_deadline = 0;  // the in-flight job never completes: no miss event for it
  t.stats.exited = true;
  return hscommon::Status::Ok();
}

hscommon::Status System::SpuriousWake(ThreadId thread) {
  Thread& t = ThreadRef(thread);
  if (t.stats.exited) {
    return hscommon::FailedPrecondition("thread " + std::to_string(thread) + " has exited");
  }
  if (t.wake_event == kInvalidEvent) {
    return hscommon::FailedPrecondition("thread " + std::to_string(thread) +
                                        " has no pending timed wakeup");
  }
  events_.Cancel(t.wake_event);
  t.wake_event = kInvalidEvent;
  WakeThreadDirect(t);
  return hscommon::Status::Ok();
}

void System::Resume(ThreadId thread) {
  Thread& t = ThreadRef(thread);
  if (!t.suspended) {
    return;
  }
  t.suspended = false;
  if (t.stats.exited) {
    return;
  }
  if (t.wake_pending) {
    t.wake_pending = false;
    WakeThread(t);
    return;
  }
  if (t.burst_remaining > 0 && !t.runnable) {
    t.runnable = true;
    ++t.stats.wakeups;
    t.last_wake = now_;
    t.awaiting_first_dispatch = true;
    tree_.SetRun(thread, now_);
  }
}

void System::AddInterruptSource(const InterruptSourceConfig& config) {
  InterruptSource src{config, hscommon::Prng(config.seed), /*next_arrival=*/now_};
  const Time base = std::max(now_, config.start);
  if (config.arrival == InterruptSourceConfig::Arrival::kPeriodic) {
    src.next_arrival = base + config.interval;
  } else {
    src.next_arrival =
        base + std::max<Time>(1, static_cast<Time>(src.prng.Exponential(
                                     static_cast<double>(config.interval))));
  }
  if (src.next_arrival > config.end) {
    src.next_arrival = hscommon::kTimeInfinity;  // window already over: never fires
  }
  interrupt_sources_.push_back(std::move(src));
}

void System::At(Time t, std::function<void(System&)> fn) {
  events_.At(std::max(t, now_), [this, fn = std::move(fn)] { fn(*this); });
}

void System::Every(Time first, Time interval, std::function<void(System&)> fn) {
  assert(interval > 0);
  At(first, [first, interval, fn](System& s) {
    fn(s);
    s.Every(first + interval, interval, fn);
  });
}

Time System::NextInterruptTime() const {
  Time next = hscommon::kTimeInfinity;
  for (const InterruptSource& src : interrupt_sources_) {
    next = std::min(next, src.next_arrival);
  }
  return next;
}

void System::ServiceInterrupts() {
  for (InterruptSource& src : interrupt_sources_) {
    if (src.next_arrival > now_) {
      continue;
    }
    Work service = src.config.service;
    if (src.config.exponential_service) {
      service = std::max<Work>(
          1, static_cast<Work>(src.prng.Exponential(static_cast<double>(service))));
    }
    if (tracer_ != nullptr) {
      tracer_->RecordInterrupt(now_, service);
    }
    now_ += service;  // stolen at top priority; the running slice is stretched, not ended
    interrupt_time_ += service;
    ++interrupt_count_;
    if (src.config.arrival == InterruptSourceConfig::Arrival::kPeriodic) {
      src.next_arrival += src.config.interval;
    } else {
      src.next_arrival += std::max<Time>(
          1, static_cast<Time>(src.prng.Exponential(static_cast<double>(src.config.interval))));
    }
    if (src.next_arrival > src.config.end) {
      src.next_arrival = hscommon::kTimeInfinity;  // active window over: source retires
    }
  }
}

void System::ServiceInterruptsSmp() {
  for (InterruptSource& src : interrupt_sources_) {
    if (src.next_arrival > now_) {
      continue;
    }
    Work service = src.config.service;
    if (src.config.exponential_service) {
      service = std::max<Work>(
          1, static_cast<Work>(src.prng.Exponential(static_cast<double>(service))));
    }
    const int cpu = std::clamp(src.config.cpu, 0, static_cast<int>(cpus_.size()) - 1);
    if (tracer_ != nullptr) {
      tracer_->RecordInterrupt(now_, service, static_cast<uint32_t>(cpu));
    }
    interrupt_time_ += service;
    ++interrupt_count_;
    // Stolen from the targeted CPU only: its open slice is stretched by the debt while
    // the other CPUs keep computing. An interrupt landing on an idle CPU overlaps idle
    // time and delays nothing.
    if (cpus_[static_cast<size_t>(cpu)].running != hsfq::kInvalidThread) {
      cpus_[static_cast<size_t>(cpu)].steal_debt += service;
    }
    if (src.config.arrival == InterruptSourceConfig::Arrival::kPeriodic) {
      src.next_arrival += src.config.interval;
    } else {
      src.next_arrival += std::max<Time>(
          1, static_cast<Time>(src.prng.Exponential(static_cast<double>(src.config.interval))));
    }
    if (src.next_arrival > src.config.end) {
      src.next_arrival = hscommon::kTimeInfinity;  // active window over: source retires
    }
  }
}

void System::ProcessDueEvents() {
  while (events_.NextTime() <= now_) {
    events_.PopAndRun();
  }
}

void System::Dispatch() {
  Cpu& c0 = cpus_[0];
  assert(c0.running == hsfq::kInvalidThread);
  const ThreadId tid = tree_.Schedule(now_);
  assert(tid != hsfq::kInvalidThread);
  c0.running = tid;
  Thread& t = ThreadRef(tid);
  ++t.stats.dispatches;
  if (t.awaiting_first_dispatch) {
    const auto latency = static_cast<double>(now_ - t.last_wake);
    t.stats.sched_latency.Add(latency);
    if (t.stats.latency_samples.size() < config_.max_latency_samples ||
        config_.max_latency_samples == 0) {
      t.stats.latency_samples.push_back(latency);
    }
    t.awaiting_first_dispatch = false;
  }
  Time overhead = config_.dispatch_overhead;
  if (fault_hooks_ != nullptr) {
    overhead += std::max<Time>(0, fault_hooks_->OnDispatchOverhead(tid, now_, /*cpu=*/0));
  }
  if (overhead > 0) {
    now_ += overhead;
    overhead_time_ += overhead;
  }
  const Work preferred = tree_.PreferredQuantumOf(tid);
  Work quantum = preferred > 0 ? preferred : config_.default_quantum;
  if (fault_hooks_ != nullptr) {
    quantum = std::max<Work>(1, fault_hooks_->OnQuantumGrant(tid, quantum, now_, /*cpu=*/0));
  }
  c0.quantum_left = quantum;
  c0.used = 0;
  if (tracer_ != nullptr) {
    tracer_->RecordDispatch(now_, tid, c0.quantum_left);
  }
}

void System::DispatchOn(int cpu) {
  Cpu& c = cpus_[static_cast<size_t>(cpu)];
  assert(c.running == hsfq::kInvalidThread);
  const ThreadId tid = tree_.Schedule(now_, cpu);
  assert(tid != hsfq::kInvalidThread);
  c.running = tid;
  Thread& t = ThreadRef(tid);
  ++t.stats.dispatches;
  if (t.awaiting_first_dispatch) {
    const auto latency = static_cast<double>(now_ - t.last_wake);
    t.stats.sched_latency.Add(latency);
    if (t.stats.latency_samples.size() < config_.max_latency_samples ||
        config_.max_latency_samples == 0) {
      t.stats.latency_samples.push_back(latency);
    }
    t.awaiting_first_dispatch = false;
  }
  Time overhead = config_.dispatch_overhead;
  if (fault_hooks_ != nullptr) {
    overhead += std::max<Time>(0, fault_hooks_->OnDispatchOverhead(tid, now_, cpu));
  }
  if (overhead > 0) {
    // Charged as this CPU's private stolen time: the other CPUs keep computing while
    // this one context-switches (unlike the single-CPU path, where overhead advances
    // the one global clock).
    c.steal_debt += overhead;
    overhead_time_ += overhead;
  }
  const Work preferred = tree_.PreferredQuantumOf(tid);
  Work quantum = preferred > 0 ? preferred : config_.default_quantum;
  if (fault_hooks_ != nullptr) {
    quantum = std::max<Work>(1, fault_hooks_->OnQuantumGrant(tid, quantum, now_, cpu));
  }
  c.quantum_left = quantum;
  c.used = 0;
  if (tracer_ != nullptr) {
    tracer_->RecordDispatch(now_, tid, c.quantum_left, static_cast<uint32_t>(cpu));
  }
}

bool System::DispatchShardedOn(int cpu) {
  Cpu& c = cpus_[static_cast<size_t>(cpu)];
  assert(c.running == hsfq::kInvalidThread);
  const ShardSet::Pick pick = shards_->PickFor(cpu, config_.steal);
  if (pick.leaf == hsfq::kInvalidNode) {
    return false;
  }
  if (pick.stolen) {
    ++c.steals;
    if (pick.rehomed) {
      ++c.migrations;
    }
    if (tracer_ != nullptr) {
      tracer_->RecordMigrate(now_, pick.leaf, static_cast<uint32_t>(pick.from_cpu),
                             static_cast<uint32_t>(cpu), /*steal=*/true, pick.rehomed,
                             static_cast<uint32_t>(cpu));
    }
  }
  bool leaf_has_more = false;
  const ThreadId tid = tree_.ScheduleLeaf(pick.leaf, now_, cpu, &leaf_has_more);
  assert(tid != hsfq::kInvalidThread && "shard offered a leaf with nothing to run");
  shards_->OnDispatched(pick.leaf, leaf_has_more);
  c.running = tid;
  c.leaf = pick.leaf;
  Thread& t = ThreadRef(tid);
  ++t.stats.dispatches;
  if (t.awaiting_first_dispatch) {
    const auto latency = static_cast<double>(now_ - t.last_wake);
    t.stats.sched_latency.Add(latency);
    if (t.stats.latency_samples.size() < config_.max_latency_samples ||
        config_.max_latency_samples == 0) {
      t.stats.latency_samples.push_back(latency);
    }
    t.awaiting_first_dispatch = false;
  }
  // The cache-warmth model: a stolen leaf's working set is cold here, so the thief
  // pays the migration penalty on top of the ordinary context-switch cost. Charged as
  // this CPU's private steal debt, like every SMP dispatch overhead.
  Time overhead = config_.dispatch_overhead;
  if (pick.stolen) {
    overhead += config_.migration_penalty;
  }
  if (fault_hooks_ != nullptr) {
    overhead += std::max<Time>(0, fault_hooks_->OnDispatchOverhead(tid, now_, cpu));
  }
  if (overhead > 0) {
    c.steal_debt += overhead;
    overhead_time_ += overhead;
  }
  // The sharded path knows the leaf it picked, so the quantum query can skip the
  // thread->leaf hash lookup PreferredQuantumOf would redo.
  const Work preferred = tree_.PreferredQuantumAt(pick.leaf, tid);
  Work quantum = preferred > 0 ? preferred : config_.default_quantum;
  if (fault_hooks_ != nullptr) {
    quantum = std::max<Work>(1, fault_hooks_->OnQuantumGrant(tid, quantum, now_, cpu));
  }
  c.quantum_left = quantum;
  c.used = 0;
  if (tracer_ != nullptr) {
    tracer_->RecordDispatch(now_, tid, c.quantum_left, static_cast<uint32_t>(cpu));
  }
  return true;
}

void System::RunRebalance() {
  const std::vector<ShardSet::Migration> moves = shards_->Rebalance();
  for (const ShardSet::Migration& m : moves) {
    ++cpus_[static_cast<size_t>(m.to)].migrations;
    if (tracer_ != nullptr) {
      tracer_->RecordMigrate(now_, m.leaf, static_cast<uint32_t>(m.from),
                             static_cast<uint32_t>(m.to), /*steal=*/false,
                             /*rehomed=*/true, static_cast<uint32_t>(m.to));
    }
  }
}

void System::EndSlice(int cpu, bool still_runnable) {
  Cpu& c = cpus_[static_cast<size_t>(cpu)];
  assert(c.running != hsfq::kInvalidThread);
  Thread& t = ThreadRef(c.running);
  const NodeId leaf = c.leaf;
  const Work used = c.used;
  tree_.Update(c.running, c.used, now_, still_runnable, cpu);
  t.runnable = still_runnable;
  c.running = hsfq::kInvalidThread;
  c.used = 0;
  c.quantum_left = 0;
  c.leaf = hsfq::kInvalidNode;
  if (shards_ != nullptr && leaf != hsfq::kInvalidNode) {
    // Dispatchability is re-read AFTER the tree charge so the shard re-queue sees
    // whether the leaf kept runnable threads off-CPU.
    shards_->OnCharged(leaf, used, tree_.LeafDispatchable(leaf));
  }
}

void System::RunUntil(Time until) {
  if (cpus_.size() > 1 || shards_ != nullptr) {
    RunUntilSmp(until);
    return;
  }
  Cpu& c0 = cpus_[0];
  while (now_ < until) {
    if (c0.running == hsfq::kInvalidThread) {
      if (events_.NextTime() <= now_) {
        ProcessDueEvents();
        continue;
      }
      if (NextInterruptTime() <= now_) {
        ServiceInterrupts();
        continue;
      }
      if (tree_.HasRunnable()) {
        Dispatch();
        continue;
      }
      // Idle: jump to the next stimulus.
      const Time next = std::min({events_.NextTime(), NextInterruptTime(), until});
      assert(next > now_);
      if (tracer_ != nullptr) {
        tracer_->RecordIdle(now_, next);
      }
      idle_time_ += next - now_;
      now_ = next;
      continue;
    }

    Thread& t = ThreadRef(c0.running);
    const Work service_left = std::min(c0.quantum_left, t.burst_remaining);
    const Time slice_end = now_ + service_left;
    // Events (or interrupt arrivals) can be overdue when interrupt service pushed the
    // clock past them; clamp so the slice never accrues negative service.
    const Time stop = std::max(
        now_, std::min({slice_end, events_.NextTime(), NextInterruptTime(), until}));
    const Work served = stop - now_;
    now_ = stop;
    c0.used += served;
    c0.quantum_left -= served;
    t.burst_remaining -= served;
    t.stats.total_service += served;
    total_service_ += served;

    if (stop == slice_end) {
      if (t.burst_remaining == 0) {
        if (!RefillBurst(t)) {
          EndSlice(0, /*still_runnable=*/false);  // slept or exited
          continue;
        }
        if (c0.quantum_left == 0) {
          EndSlice(0, /*still_runnable=*/true);  // quantum also expired
        }
        continue;  // same slice continues into the next burst
      }
      EndSlice(0, /*still_runnable=*/true);  // quantum expiry
      continue;
    }
    if (now_ >= until) {
      // Leave the slice in flight: the next RunUntil continues it, so stopping at a
      // horizon never perturbs the schedule. Per-thread stats are already accrued
      // per-segment; only the SFQ tags lag until the slice really ends.
      break;
    }
    if (NextInterruptTime() <= now_) {
      ServiceInterrupts();  // steals time; the slice is NOT ended
      continue;
    }
    // A timer/wakeup/scripted event preempts the slice.
    EndSlice(0, /*still_runnable=*/true);
    ProcessDueEvents();
  }
}

void System::RunUntilSmp(Time until) {
  const size_t ncpus = cpus_.size();
  const bool sharded = shards_ != nullptr;
  const bool rebalancing = sharded && config_.rebalance_interval > 0;
  if (rebalancing && next_rebalance_ == 0) {
    next_rebalance_ = now_ + config_.rebalance_interval;
  }
  while (now_ < until) {
    if (events_.NextTime() <= now_) {
      // A global tick: every CPU is preempted (in cpu-id order, keeping the run
      // deterministic), then the due events run against a fully-quiesced tree.
      for (size_t ci = 0; ci < ncpus; ++ci) {
        if (cpus_[ci].running != hsfq::kInvalidThread) {
          EndSlice(static_cast<int>(ci), /*still_runnable=*/true);
        }
      }
      ProcessDueEvents();
      continue;
    }
    if (NextInterruptTime() <= now_) {
      ServiceInterruptsSmp();
      continue;
    }
    if (sharded) {
      // Wakeups, sleeps, or structural changes happened since the shards last
      // reconciled: fix up the touched leaves before filling CPUs (and before a
      // rebalance pass, so it never partitions on stale queue entries). O(1) when
      // nothing moved; O(touched leaves) otherwise — never a full sweep unless the
      // tree reports a structural change.
      shards_->Reconcile();
    }
    if (rebalancing && now_ >= next_rebalance_) {
      RunRebalance();
      next_rebalance_ = now_ + config_.rebalance_interval;
    }

    // Fill idle CPUs, lowest id first: work-conserving as long as the shared tree has
    // a dispatchable thread (with sharding and stealing off, only as long as each
    // CPU's own shard has one — the drift the work-conservation check measures).
    for (size_t ci = 0; ci < ncpus; ++ci) {
      if (cpus_[ci].running != hsfq::kInvalidThread) {
        continue;
      }
      if (sharded) {
        DispatchShardedOn(static_cast<int>(ci));
      } else if (tree_.HasDispatchable()) {
        DispatchOn(static_cast<int>(ci));
      }
    }

    // Advance to the earliest of: next stimulus, the horizon, or a CPU finishing its
    // slice (its steal debt burned plus the rest of min(quantum, burst)).
    Time stop = std::min({events_.NextTime(), NextInterruptTime(), until});
    if (rebalancing) {
      stop = std::min(stop, next_rebalance_);
    }
    size_t busy = 0;
    for (Cpu& c : cpus_) {
      if (c.running == hsfq::kInvalidThread) {
        continue;
      }
      ++busy;
      const Thread& t = ThreadRef(c.running);
      stop = std::min(stop,
                      now_ + c.steal_debt + std::min(c.quantum_left, t.burst_remaining));
    }

    if (busy == 0) {
      // The whole machine is idle: jump to the next stimulus (a due rebalance counts
      // as one — a steal-off run must still wake up to re-home stranded leaves).
      Time next = std::min({events_.NextTime(), NextInterruptTime(), until});
      if (rebalancing) {
        next = std::min(next, next_rebalance_);
      }
      assert(next > now_);
      if (tracer_ != nullptr) {
        for (size_t ci = 0; ci < ncpus; ++ci) {
          tracer_->RecordIdle(now_, next, static_cast<uint32_t>(ci));
        }
      }
      idle_time_ += (next - now_) * static_cast<Time>(ncpus);
      now_ = next;
      continue;
    }

    assert(stop >= now_);
    const Time seg = stop - now_;
    if (seg > 0) {
      if (tracer_ != nullptr && busy < ncpus) {
        // Partially idle machine: record the idle span per unfilled CPU so the
        // work-conservation invariant (an idle CPU beside a shard with surplus work)
        // is visible in the trace, not just in aggregate idle_time_.
        for (size_t ci = 0; ci < ncpus; ++ci) {
          if (cpus_[ci].running == hsfq::kInvalidThread) {
            tracer_->RecordIdle(now_, stop, static_cast<uint32_t>(ci));
          }
        }
      }
      idle_time_ += seg * static_cast<Time>(ncpus - busy);
      for (Cpu& c : cpus_) {
        if (c.running == hsfq::kInvalidThread) {
          continue;
        }
        const Time burn = std::min(seg, c.steal_debt);
        c.steal_debt -= burn;
        const Work served = seg - burn;
        if (served > 0) {
          Thread& t = ThreadRef(c.running);
          c.used += served;
          c.quantum_left -= served;
          t.burst_remaining -= served;
          t.stats.total_service += served;
          total_service_ += served;
        }
      }
      now_ = stop;
    }

    // Close out any slice that ran to completion (again in cpu-id order). Slices still
    // in flight at the horizon stay in flight, exactly like the single-CPU path.
    for (size_t ci = 0; ci < ncpus; ++ci) {
      Cpu& c = cpus_[ci];
      if (c.running == hsfq::kInvalidThread || c.steal_debt > 0) {
        continue;
      }
      Thread& t = ThreadRef(c.running);
      if (t.burst_remaining == 0) {
        if (!RefillBurst(t, static_cast<int>(ci))) {
          EndSlice(static_cast<int>(ci), /*still_runnable=*/false);  // slept or exited
          continue;
        }
        if (c.quantum_left == 0) {
          EndSlice(static_cast<int>(ci), /*still_runnable=*/true);  // quantum also expired
        }
        continue;  // same slice continues into the next burst
      }
      if (c.quantum_left == 0) {
        EndSlice(static_cast<int>(ci), /*still_runnable=*/true);  // quantum expiry
      }
    }
  }
}

namespace {

// Minimal JSON string escaping for names (quotes and backslashes).
std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

void WalkNodes(const hsfq::SchedulingStructure& tree, NodeId node, std::FILE* f,
               bool* first) {
  if (!*first) {
    std::fputs(",\n", f);
  }
  *first = false;
  std::fprintf(f, "    {\"path\": \"%s\", \"weight\": %llu, \"is_leaf\": %s, "
               "\"service_ns\": %lld}",
               JsonEscape(tree.PathOf(node)).c_str(),
               static_cast<unsigned long long>(*tree.GetNodeWeight(node)),
               tree.IsLeaf(node) ? "true" : "false",
               static_cast<long long>(*tree.ServiceOf(node)));
  for (NodeId child : tree.ChildrenOf(node)) {
    WalkNodes(tree, child, f, first);
  }
}

}  // namespace

hscommon::Status System::WriteStatsJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return hscommon::InvalidArgument("cannot open '" + path + "' for writing");
  }
  std::fprintf(f, "{\n  \"now_ns\": %lld,\n", static_cast<long long>(now_));
  std::fprintf(f, "  \"total_service_ns\": %lld,\n", static_cast<long long>(total_service_));
  std::fprintf(f, "  \"idle_ns\": %lld,\n", static_cast<long long>(idle_time_));
  std::fprintf(f, "  \"interrupt_ns\": %lld,\n", static_cast<long long>(interrupt_time_));
  std::fprintf(f, "  \"interrupt_count\": %llu,\n",
               static_cast<unsigned long long>(interrupt_count_));
  std::fprintf(f, "  \"overhead_ns\": %lld,\n", static_cast<long long>(overhead_time_));
  std::fprintf(f, "  \"cross_class_blocks\": %llu,\n",
               static_cast<unsigned long long>(cross_class_blocks_));

  if (shards_ != nullptr) {
    // Sharded-dispatch reconciliation telemetry: how much of the round-by-round
    // shard upkeep ran incrementally (change-log entries) vs as sweeps, and how
    // scoped those sweeps stayed (subtree vs global). The scale drives gate on
    // these staying sweep-light under wakeup storms.
    std::fprintf(f,
                 "  \"shards\": {\"reconcile_rounds\": %llu, \"entries_processed\": "
                 "%llu, \"full_resyncs\": %llu, \"subtree_resyncs\": %llu, "
                 "\"swept_leaves\": %llu},\n",
                 static_cast<unsigned long long>(shards_->reconcile_rounds()),
                 static_cast<unsigned long long>(shards_->entries_processed()),
                 static_cast<unsigned long long>(shards_->full_resyncs()),
                 static_cast<unsigned long long>(shards_->subtree_resyncs()),
                 static_cast<unsigned long long>(shards_->swept_leaves()));
  }

  std::fputs("  \"cpus\": [\n", f);
  for (size_t i = 0; i < cpus_.size(); ++i) {
    std::fprintf(f, "    {\"id\": %zu, \"steals\": %llu, \"migrations\": %llu}%s\n", i,
                 static_cast<unsigned long long>(cpus_[i].steals),
                 static_cast<unsigned long long>(cpus_[i].migrations),
                 i + 1 < cpus_.size() ? "," : "");
  }
  std::fputs("  ],\n", f);

  std::fputs("  \"threads\": [\n", f);
  for (size_t i = 0; i < threads_.size(); ++i) {
    const Thread& t = *threads_[i];
    std::fprintf(f,
                 "    {\"id\": %zu, \"name\": \"%s\", \"service_ns\": %lld, "
                 "\"dispatches\": %llu, \"wakeups\": %llu, \"latency_mean_ns\": %.1f, "
                 "\"latency_max_ns\": %.1f, \"deadline_jobs\": %llu, "
                 "\"deadline_misses\": %llu, \"tardiness_max_ns\": %.1f, "
                 "\"exited\": %s}%s\n",
                 i, JsonEscape(t.name).c_str(), static_cast<long long>(t.stats.total_service),
                 static_cast<unsigned long long>(t.stats.dispatches),
                 static_cast<unsigned long long>(t.stats.wakeups),
                 t.stats.sched_latency.mean(), t.stats.sched_latency.max(),
                 static_cast<unsigned long long>(t.stats.deadline_jobs),
                 static_cast<unsigned long long>(t.stats.deadline_misses),
                 t.stats.tardiness.max(),
                 t.stats.exited ? "true" : "false", i + 1 < threads_.size() ? "," : "");
  }
  std::fputs("  ],\n", f);

  std::fputs("  \"nodes\": [\n", f);
  bool first = true;
  WalkNodes(tree_, hsfq::kRootNode, f, &first);
  std::fputs("\n  ],\n", f);

  std::fputs("  \"mutexes\": [\n", f);
  for (size_t i = 0; i < mutexes_.size(); ++i) {
    std::fprintf(f, "    {\"id\": %zu, \"acquisitions\": %llu, \"contentions\": %llu}%s\n",
                 i, static_cast<unsigned long long>(mutexes_[i].stats.acquisitions),
                 static_cast<unsigned long long>(mutexes_[i].stats.contentions),
                 i + 1 < mutexes_.size() ? "," : "");
  }
  std::fputs("  ]\n}\n", f);
  std::fclose(f);
  return hscommon::Status::Ok();
}

const ThreadStats& System::StatsOf(ThreadId thread) const { return ThreadRef(thread).stats; }

Time System::AwaitingDispatchFor(ThreadId thread) const {
  const Thread& t = ThreadRef(thread);
  if (!t.runnable || !t.awaiting_first_dispatch || IsOnCpu(thread)) {
    return 0;
  }
  return now_ - t.last_wake;
}

Workload* System::WorkloadOf(ThreadId thread) const {
  return threads_[thread]->workload.get();
}

const std::string& System::NameOf(ThreadId thread) const { return ThreadRef(thread).name; }

}  // namespace hsim
