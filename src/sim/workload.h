// Workload models — what the simulated threads *do*.
//
// A workload is a deterministic (seeded) generator of alternating CPU bursts and sleeps.
// The simulator asks for the next action whenever the previous one completes; a compute
// action followed immediately by another compute action does NOT block (the thread keeps
// running within its quantum), which is how multi-frame decoding and loop benchmarks are
// expressed.

#ifndef HSCHED_SRC_SIM_WORKLOAD_H_
#define HSCHED_SRC_SIM_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/prng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace hsim {

using hscommon::Time;
using hscommon::Work;

// Identifies a simulated mutex created with System::CreateMutex.
using MutexId = uint32_t;

// One step of a thread's behaviour.
struct WorkloadAction {
  enum class Kind {
    kCompute,  // consume `work` of CPU service, then ask again
    kSleep,    // block until `until` (absolute simulated time), then ask again
    kLock,     // acquire simulated mutex `mutex` (may block), then ask again
    kUnlock,   // release simulated mutex `mutex`, then ask again
    kExit,     // thread terminates
  };

  Kind kind = Kind::kExit;
  Work work = 0;
  Time until = 0;
  MutexId mutex = 0;
  // Absolute completion deadline of a compute burst (0 = none). A deadline-stamped
  // burst that completes past this time makes the simulator emit a kDeadlineMiss
  // trace event and count the miss in the thread's stats (src/rt metric family).
  Time deadline = 0;

  static WorkloadAction Compute(Work work) {
    return {.kind = Kind::kCompute, .work = work};
  }
  static WorkloadAction ComputeBy(Work work, Time deadline) {
    return {.kind = Kind::kCompute, .work = work, .deadline = deadline};
  }
  static WorkloadAction SleepUntil(Time until) {
    return {.kind = Kind::kSleep, .until = until};
  }
  static WorkloadAction Lock(MutexId mutex) { return {.kind = Kind::kLock, .mutex = mutex}; }
  static WorkloadAction Unlock(MutexId mutex) {
    return {.kind = Kind::kUnlock, .mutex = mutex};
  }
  static WorkloadAction Exit() { return {.kind = Kind::kExit}; }
};

class Workload {
 public:
  virtual ~Workload() = default;

  // The next action. `now` is the completion time of the previous action (or the
  // thread's start time on the first call).
  virtual WorkloadAction NextAction(Time now) = 0;
};

// Always-runnable CPU hog — the Dhrystone V2.1 stand-in. "Loops completed" equals
// attained service divided by cycles-per-loop; the simulator exposes attained service,
// so the benches derive loop counts from it.
class CpuBoundWorkload : public Workload {
 public:
  // `chunk` is the internal burst granularity (has no scheduling significance; bursts
  // chain without blocking).
  explicit CpuBoundWorkload(Work chunk = 100 * hscommon::kMillisecond) : chunk_(chunk) {}

  WorkloadAction NextAction(Time /*now*/) override {
    return WorkloadAction::Compute(chunk_);
  }

 private:
  Work chunk_;
};

// Periodic hard real-time task: release at t0 + k*period, compute `computation`, sleep
// until the next release. Records per-round slack (deadline minus completion time);
// negative slack is a deadline miss. Matches the Figure 9 threads, where "a clock
// interrupt announces the deadline for the current round and the start of a new round".
class PeriodicWorkload : public Workload {
 public:
  PeriodicWorkload(Time period, Work computation, Time relative_deadline = 0)
      : period_(period),
        computation_(computation),
        relative_deadline_(relative_deadline > 0 ? relative_deadline : period) {}

  WorkloadAction NextAction(Time now) override;

  // Slack statistics across completed rounds (nanoseconds; negative = miss).
  const hscommon::RunningStats& slack() const { return slack_; }
  const std::vector<double>& slack_samples() const { return slack_samples_; }
  uint64_t rounds_completed() const { return rounds_completed_; }
  uint64_t deadline_misses() const { return deadline_misses_; }

 private:
  Time period_;
  Work computation_;
  Time relative_deadline_;
  Time t0_ = 0;
  uint64_t round_ = 0;
  bool started_ = false;
  bool in_round_ = false;  // a compute burst of the current round is outstanding
  uint64_t rounds_completed_ = 0;
  uint64_t deadline_misses_ = 0;
  hscommon::RunningStats slack_;
  std::vector<double> slack_samples_;
};

// Deadline-aware periodic soft-real-time task — the video-conferencing / audio workload
// of the rt scenario pack (src/rt/scenario_pack.h). Like PeriodicWorkload, but every
// compute burst is stamped with its job's absolute deadline (release + relative
// deadline), so the simulator's deadline-miss detection sees each job, and the per-job
// computation jitters uniformly in [(1 - jitter) * wcet, wcet] — admission keeps using
// the declared wcet, actual demand varies below it like a real encoder. Overruns queue:
// a job released while the previous one still computes starts immediately after it,
// keeping its own scheduled release time (and deadline), so tardiness under overload
// grows at rate U - 1 instead of resetting each round.
class RtPeriodicWorkload : public Workload {
 public:
  RtPeriodicWorkload(Time period, Work wcet, Time relative_deadline = 0,
                     double jitter = 0.0, uint64_t seed = 1)
      : prng_(seed),
        period_(period),
        wcet_(wcet),
        relative_deadline_(relative_deadline > 0 ? relative_deadline : period),
        jitter_(jitter < 0.0 ? 0.0 : (jitter > 1.0 ? 1.0 : jitter)) {}

  WorkloadAction NextAction(Time now) override;

  uint64_t jobs_released() const { return round_; }

 private:
  Work JitteredComputation();

  hscommon::Prng prng_;
  Time period_;
  Work wcet_;
  Time relative_deadline_;
  double jitter_;
  Time t0_ = 0;
  uint64_t round_ = 0;  // jobs released so far; the in-flight job is round_ - 1
  bool started_ = false;
  bool in_round_ = false;  // a compute burst of the current round is outstanding
};

// Interactive user: exponential think time, then a short burst — background load with
// SVR4-style sleep/wake behaviour (drives the TS class's priority churn).
class InteractiveWorkload : public Workload {
 public:
  InteractiveWorkload(uint64_t seed, Time mean_think, Work mean_burst)
      : prng_(seed), mean_think_(mean_think), mean_burst_(mean_burst) {}

  WorkloadAction NextAction(Time now) override;

 private:
  hscommon::Prng prng_;
  Time mean_think_;
  Work mean_burst_;
  bool computing_ = false;
};

// On/off load: uniform-random compute burst, then uniform-random sleep. Models the
// fluctuating background usage of the SVR4 node in Figure 8(a).
//
// A non-zero `storm_period` rounds every wake time UP to the next multiple of the
// period, so a population of these threads wakes in synchronized storms (the
// timer-wheel alignment of production kernels) — the stress shape for batched
// wakeup handling. The drawn sleep duration is unchanged; only the wake instant
// snaps to the boundary at or after it.
class BurstyWorkload : public Workload {
 public:
  BurstyWorkload(uint64_t seed, Work min_burst, Work max_burst, Time min_sleep,
                 Time max_sleep, Time storm_period = 0)
      : prng_(seed),
        min_burst_(min_burst),
        max_burst_(max_burst),
        min_sleep_(min_sleep),
        max_sleep_(max_sleep),
        storm_period_(storm_period) {}

  WorkloadAction NextAction(Time now) override;

 private:
  hscommon::Prng prng_;
  Work min_burst_;
  Work max_burst_;
  Time min_sleep_;
  Time max_sleep_;
  Time storm_period_;
  bool computing_ = false;
};

// Replays an explicit step script, optionally looping — the building block for
// lock-based scenarios (priority inversion) and exact-behaviour tests. Sleeps are
// expressed as durations relative to the step's start.
class ScriptedWorkload : public Workload {
 public:
  struct Step {
    enum class Kind { kCompute, kSleepFor, kLock, kUnlock };
    Kind kind = Kind::kCompute;
    Work work = 0;       // kCompute
    Time duration = 0;   // kSleepFor
    MutexId mutex = 0;   // kLock / kUnlock

    static Step Compute(Work work) { return {.kind = Kind::kCompute, .work = work}; }
    static Step SleepFor(Time duration) {
      return {.kind = Kind::kSleepFor, .duration = duration};
    }
    static Step Lock(MutexId mutex) { return {.kind = Kind::kLock, .mutex = mutex}; }
    static Step Unlock(MutexId mutex) { return {.kind = Kind::kUnlock, .mutex = mutex}; }
  };

  ScriptedWorkload(std::vector<Step> steps, bool loop)
      : steps_(std::move(steps)), loop_(loop) {}

  WorkloadAction NextAction(Time now) override;

  // Completed passes over the script (loop mode).
  uint64_t iterations() const { return iterations_; }

 private:
  std::vector<Step> steps_;
  bool loop_;
  size_t next_ = 0;
  uint64_t iterations_ = 0;
};

// Replays a recorded (compute, sleep) trace from a CSV file — for driving the simulator
// with measured application behaviour. CSV columns: compute_ns,sleep_ns (header allowed);
// sleep_ns == 0 means the bursts chain without blocking.
class TraceWorkload : public Workload {
 public:
  struct Record {
    Work compute = 0;
    Time sleep = 0;
  };

  TraceWorkload(std::vector<Record> records, bool loop)
      : records_(std::move(records)), loop_(loop) {}

  // Loads "compute_ns,sleep_ns" rows; returns an error for unreadable/malformed files.
  static hscommon::StatusOr<std::vector<Record>> LoadCsv(const std::string& path);

  WorkloadAction NextAction(Time now) override;

 private:
  std::vector<Record> records_;
  bool loop_;
  size_t index_ = 0;
  bool sleeping_next_ = false;  // the current record's sleep phase is pending
};

// Decorator that records the wrapped workload's (compute, sleep) behaviour into
// TraceWorkload records — run a stochastic workload once, save the trace, replay it
// deterministically forever after.
class RecordingWorkload : public Workload {
 public:
  explicit RecordingWorkload(std::unique_ptr<Workload> inner) : inner_(std::move(inner)) {}

  WorkloadAction NextAction(Time now) override;

  const std::vector<TraceWorkload::Record>& records() const { return records_; }

  // True once the wrapped workload issued kExit. A replay must honor this: looping a
  // recording whose source exited would run the synthesized scenario past the source
  // trace's horizon.
  bool exited() const { return exited_; }

  // Builds the replaying workload. `loop` is only honored when the source never
  // exited — a recorded exit caps the replay at the recording's horizon.
  std::unique_ptr<TraceWorkload> MakeReplay(bool loop) const {
    return std::make_unique<TraceWorkload>(records_, loop && !exited_);
  }

  // Writes "compute_ns,sleep_ns" rows loadable by TraceWorkload::LoadCsv. A recorded
  // exit is noted as a trailing "# exit" comment (ignored by LoadCsv).
  hscommon::Status SaveCsv(const std::string& path) const;

 private:
  std::unique_ptr<Workload> inner_;
  std::vector<TraceWorkload::Record> records_;
  bool have_open_record_ = false;  // last action was a compute: its sleep is pending
  bool exited_ = false;            // the wrapped workload issued kExit
};

// Runs a fixed amount of service then exits — for batch jobs and tests.
class FiniteWorkload : public Workload {
 public:
  explicit FiniteWorkload(Work total) : remaining_(total) {}

  WorkloadAction NextAction(Time /*now*/) override {
    if (remaining_ <= 0) {
      return WorkloadAction::Exit();
    }
    const Work burst = remaining_;
    remaining_ = 0;
    return WorkloadAction::Compute(burst);
  }

 private:
  Work remaining_;
};

}  // namespace hsim

#endif  // HSCHED_SRC_SIM_WORKLOAD_H_
