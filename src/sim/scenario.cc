#include "src/sim/scenario.h"

#include <algorithm>

namespace hsim {

using hscommon::InvalidArgument;
using hscommon::StatusOr;

namespace {

// "/a/b/c" -> {"/a/b", "c"}. The root itself is not creatable.
StatusOr<std::pair<std::string, std::string>> SplitPath(const std::string& path) {
  if (path.size() < 2 || path[0] != '/' || path.back() == '/') {
    return InvalidArgument("bad node path '" + path + "'");
  }
  const size_t slash = path.rfind('/');
  const std::string parent = slash == 0 ? "/" : path.substr(0, slash);
  const std::string name = path.substr(slash + 1);
  if (name.empty()) {
    return InvalidArgument("bad node path '" + path + "'");
  }
  return std::make_pair(parent, name);
}

size_t Depth(const std::string& path) {
  return static_cast<size_t>(std::count(path.begin(), path.end(), '/'));
}

}  // namespace

StatusOr<ScenarioBinding> BuildScenario(const ScenarioSpec& spec,
                                        const std::string& default_scheduler,
                                        const LeafSchedulerFactory& factory,
                                        System& system) {
  ScenarioBinding binding;
  binding.nodes["/"] = hsfq::kRootNode;

  // Parents before children; stable so sibling order follows the spec.
  std::vector<const ScenarioNodeSpec*> ordered;
  ordered.reserve(spec.nodes.size());
  for (const ScenarioNodeSpec& n : spec.nodes) {
    ordered.push_back(&n);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScenarioNodeSpec* a, const ScenarioNodeSpec* b) {
                     return Depth(a->path) < Depth(b->path);
                   });

  for (const ScenarioNodeSpec* n : ordered) {
    auto split = SplitPath(n->path);
    if (!split.ok()) {
      return split.status();
    }
    const auto parent_it = binding.nodes.find(split->first);
    if (parent_it == binding.nodes.end()) {
      return InvalidArgument("node '" + n->path + "' has no parent '" + split->first +
                             "' in the scenario");
    }
    std::unique_ptr<hsfq::LeafScheduler> leaf;
    if (n->is_leaf) {
      const std::string& name =
          n->scheduler.empty() ? default_scheduler : n->scheduler;
      auto made = factory(name);
      if (!made.ok()) {
        return made.status();
      }
      leaf = std::move(*made);
    }
    auto id = system.tree().MakeNode(split->second, parent_it->second, n->weight,
                                     std::move(leaf));
    if (!id.ok()) {
      return id.status();
    }
    binding.nodes[n->path] = *id;
  }

  for (const ScenarioThreadSpec& t : spec.threads) {
    const auto leaf_it = binding.nodes.find(t.leaf_path);
    if (leaf_it == binding.nodes.end()) {
      return InvalidArgument("thread '" + t.name + "' names unknown leaf '" +
                             t.leaf_path + "'");
    }
    if (!t.make_workload) {
      return InvalidArgument("thread '" + t.name + "' has no workload factory");
    }
    auto id = system.CreateThread(t.name, leaf_it->second, t.params, t.make_workload(),
                                  t.start_time);
    if (!id.ok()) {
      return id.status();
    }
    binding.threads[t.source_id] = *id;
    binding.thread_ids.push_back(*id);
  }
  return binding;
}

}  // namespace hsim
