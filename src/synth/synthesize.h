// Trace -> scenario synthesis: fits a SynthesizedWorkload per thread of a recorded
// HSTRACE1 stream and packages the scheduling tree plus the thread population as a
// self-contained SynthScenario, instantiable into a System under ANY scheduler
// configuration, CPU count, or fault plan via hsim::BuildScenario.
//
// What is and is not captured:
//  - Captured: tree shape, node weights, per-thread leaf placement and weight, arrival
//    time (first wake), per-episode service demand, inter-episode gaps, exit (a thread
//    whose last episode completed and never woke again is synthesized to exit there).
//  - Not captured: TS priorities (traces record only ThreadParams::weight), mutex
//    interactions (schedule-dependent), and the wall-clock shape of bursts under
//    preemption — service demand is what transfers across configurations.

#ifndef HSCHED_SRC_SYNTH_SYNTHESIZE_H_
#define HSCHED_SRC_SYNTH_SYNTHESIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/scenario.h"
#include "src/synth/synth_workload.h"
#include "src/trace/reader.h"

namespace hsynth {

struct SynthNode {
  std::string path;  // "/"-rooted
  uint64_t weight = 1;
  bool is_leaf = false;
};

struct SynthThread {
  uint64_t source_id = 0;  // thread id in the source trace
  std::string name;
  std::string leaf_path;
  uint64_t weight = 1;
  Time start = 0;  // first wake in the source trace
  SynthesizedWorkload::Spec spec;
};

// A self-contained synthesized scenario. Nodes are ordered parents-first.
struct SynthScenario {
  std::vector<SynthNode> nodes;
  std::vector<SynthThread> threads;
  Time horizon = 0;  // source trace's last event time
  int source_cpus = 1;
};

struct SynthOptions {
  FitMode mode = FitMode::kExactReplay;
  SleepAnchor anchor = SleepAnchor::kRelative;
  uint64_t seed = 1;  // base seed; each thread gets a distinct derived stream
};

// Fits a scenario from an analyzed trace. Fails when the trace has no usable threads
// (e.g. an empty or purely structural stream) or is truncated at the front (dropped
// events make the tree/arrival reconstruction unsound).
hscommon::StatusOr<SynthScenario> Synthesize(const htrace::TraceAnalyzer& analyzer,
                                             const SynthOptions& options);

// Lowers a synthesized scenario to the generic scenario spec. Workload factories build
// fresh SynthesizedWorkloads per instantiation; in histogram mode each thread's seed is
// derived deterministically from options.seed and its source id.
hsim::ScenarioSpec ToScenarioSpec(const SynthScenario& scenario,
                                  const SynthOptions& options);

}  // namespace hsynth

#endif  // HSCHED_SRC_SYNTH_SYNTHESIZE_H_
