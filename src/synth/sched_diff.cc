#include "src/synth/sched_diff.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/sched/registry.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"
#include "src/trace/reader.h"
#include "src/trace/tracer.h"

namespace hsynth {

using hscommon::InvalidArgument;
using hscommon::Status;
using hscommon::StatusOr;
using htrace::TraceAnalyzer;

namespace {

// Everything one configuration's run produces that the diff needs.
struct RunOutput {
  RunSummary summary;
  std::unique_ptr<TraceAnalyzer> analyzer;
  std::map<uint64_t, uint64_t> source_to_thread;  // source_id -> run's ThreadId
};

StatusOr<RunOutput> RunOne(const hsim::ScenarioSpec& spec, const SchedDiffConfig& config,
                           Time duration, const std::string& fault_spec) {
  if (config.cpus < 1) {
    return InvalidArgument("cpus must be >= 1");
  }
  const Time until = duration > 0 ? duration : spec.horizon;
  if (until <= 0) {
    return InvalidArgument("scenario has no horizon; pass an explicit duration");
  }

  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, config.cpus);
  const hsim::System::Config sys_config{
      .ncpus = config.cpus, .sharded = config.sharded, .steal = config.steal};
  hsim::System sys(sys_config);
  sys.SetTracer(&tracer);

  std::optional<hsfault::FaultInjector> injector;
  if (!fault_spec.empty()) {
    auto plan = hsfault::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      return plan.status();
    }
    injector.emplace(*std::move(plan));
    injector->Arm(sys);
  }

  auto binding = hsim::BuildScenario(spec, config.scheduler, hleaf::MakeLeafScheduler,
                                     sys);
  if (!binding.ok()) {
    return binding.status();
  }
  sys.RunUntil(until);
  if (injector) {
    injector->Disarm();
  }

  RunOutput out;
  const std::vector<htrace::TraceEvent> events = tracer.MergedSnapshot();
  out.summary.label = config.label;
  out.summary.scheduler = config.scheduler;
  out.summary.cpus = config.cpus;
  out.summary.sharded = config.sharded;
  out.summary.steal = config.steal;
  out.summary.duration = until;
  out.summary.events = events.size();
  out.summary.dropped = tracer.TotalDropped();
  out.summary.total_service = sys.total_service();

  hsfault::InvariantChecker::Options checker_options;
  if (config.sharded) {
    // Shard keys, not per-node SFQ tags, order the picks, and the steal rule lets
    // sibling gaps widen by a few steal windows before a steal corrects them.
    checker_options.ordered_pick_tags = false;
    checker_options.steal_drift_allowance = 4 * sys_config.steal_window;
  }
  hsfault::InvariantChecker checker(checker_options);
  checker.SetDropped(out.summary.dropped);
  for (size_t i = 0; i < events.size(); ++i) {
    checker.OnEvent(events[i], i);
  }
  checker.Finish();
  out.summary.violations = checker.violation_count();
  for (const auto& v : checker.violations()) {
    if (v.kind == hsfault::InvariantChecker::Violation::Kind::kFairnessGap) {
      ++out.summary.fairness_violations;
    }
  }
  out.summary.checker_report = checker.Report();

  out.analyzer =
      std::make_unique<TraceAnalyzer>(events, out.summary.dropped);
  uint64_t migrations = 0;
  for (const TraceAnalyzer::CpuStats& s : out.analyzer->PerCpuStats()) {
    out.summary.per_cpu.push_back(CpuSummary{s.cpu, s.dispatches, s.busy, s.idle,
                                             s.steals, s.rebalances, s.utilization});
    migrations += s.steals + s.rebalances;
  }
  out.summary.migration_rate_hz = static_cast<double>(migrations) /
                                  (static_cast<double>(until) / hscommon::kSecond);
  for (const auto& [source_id, thread_id] : binding->threads) {
    out.source_to_thread[source_id] = thread_id;
  }
  return out;
}

LatencyStats SummarizeLatencies(std::vector<Time> samples) {
  LatencyStats stats;
  if (samples.empty()) {
    return stats;
  }
  std::sort(samples.begin(), samples.end());
  stats.count = samples.size();
  double sum = 0;
  for (const Time s : samples) {
    sum += static_cast<double>(s);
  }
  stats.mean_ns = sum / static_cast<double>(samples.size());
  stats.p50_ns = samples[samples.size() / 2];
  stats.p99_ns = samples[(samples.size() * 99) / 100 == samples.size()
                             ? samples.size() - 1
                             : (samples.size() * 99) / 100];
  stats.max_ns = samples.back();
  return stats;
}

// Sibling-leaf pairs of the scenario tree, by path ("/a","/b" share parent "/").
std::vector<std::pair<std::string, std::string>> SiblingLeafPairs(
    const hsim::ScenarioSpec& spec) {
  std::map<std::string, std::vector<std::string>> by_parent;
  for (const hsim::ScenarioNodeSpec& n : spec.nodes) {
    if (!n.is_leaf) {
      continue;
    }
    const size_t slash = n.path.rfind('/');
    by_parent[n.path.substr(0, slash == 0 ? 1 : slash)].push_back(n.path);
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& [parent, leaves] : by_parent) {
    for (size_t i = 0; i < leaves.size(); ++i) {
      for (size_t j = i + 1; j < leaves.size(); ++j) {
        pairs.emplace_back(leaves[i], leaves[j]);
      }
    }
  }
  return pairs;
}

void JsonEscapeTo(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  JsonEscapeTo(out, s);
  out += "\"";
  return out;
}

void AppendRunSummary(std::string& out, const RunSummary& run, const char* indent) {
  char buf[256];
  out += indent;
  out += "\"label\": " + JsonString(run.label) + ",\n";
  out += indent;
  out += "\"scheduler\": " + JsonString(run.scheduler) + ",\n";
  std::snprintf(buf, sizeof(buf),
                "%s\"cpus\": %d,\n%s\"sharded\": %s,\n%s\"steal\": %s,\n"
                "%s\"duration_ns\": %lld,\n%s\"events\": %llu,\n"
                "%s\"dropped\": %llu,\n%s\"total_service_ns\": %lld,\n"
                "%s\"violations\": %llu,\n%s\"fairness_violations\": %llu,\n"
                "%s\"migration_rate_hz\": %.3f,\n",
                indent, run.cpus, indent, run.sharded ? "true" : "false", indent,
                run.steal ? "true" : "false", indent,
                static_cast<long long>(run.duration), indent,
                static_cast<unsigned long long>(run.events), indent,
                static_cast<unsigned long long>(run.dropped), indent,
                static_cast<long long>(run.total_service), indent,
                static_cast<unsigned long long>(run.violations), indent,
                static_cast<unsigned long long>(run.fairness_violations), indent,
                run.migration_rate_hz);
  out += buf;
  out += indent;
  out += "\"per_cpu\": [";
  for (size_t i = 0; i < run.per_cpu.size(); ++i) {
    const CpuSummary& c = run.per_cpu[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"cpu\": %d, \"dispatches\": %llu, \"busy_ns\": %lld, "
                  "\"idle_ns\": %lld, \"steals\": %llu, \"rebalances\": %llu, "
                  "\"utilization\": %.6f}",
                  i == 0 ? "" : ", ", c.cpu,
                  static_cast<unsigned long long>(c.dispatches),
                  static_cast<long long>(c.busy), static_cast<long long>(c.idle),
                  static_cast<unsigned long long>(c.steals),
                  static_cast<unsigned long long>(c.rebalances), c.utilization);
    out += buf;
  }
  out += "]\n";
}

void AppendLatency(std::string& out, const LatencyStats& stats) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean_ns\": %.1f, \"p50_ns\": %lld, "
                "\"p99_ns\": %lld, \"max_ns\": %lld}",
                static_cast<unsigned long long>(stats.count), stats.mean_ns,
                static_cast<long long>(stats.p50_ns),
                static_cast<long long>(stats.p99_ns),
                static_cast<long long>(stats.max_ns));
  out += buf;
}

// Folds the analyzer's kAdmit/kDeadlineMiss accounting for one leaf path into the
// report's summary form (all zeros when the leaf saw no RT traffic).
LeafRtSummary RtSummaryFor(const TraceAnalyzer& analyzer, const std::string& path) {
  LeafRtSummary out;
  const auto id = analyzer.NodeByPath(path);
  if (!id.ok()) {
    return out;
  }
  for (const TraceAnalyzer::LeafRtStats& s : analyzer.PerLeafRtStats()) {
    if (s.leaf != *id) {
      continue;
    }
    out.releases = s.releases;
    out.misses = s.misses;
    out.miss_rate = s.miss_rate;
    out.tardiness_p50 = TraceAnalyzer::Percentile(s.tardiness, 50);
    out.tardiness_p99 = TraceAnalyzer::Percentile(s.tardiness, 99);
    break;
  }
  return out;
}

}  // namespace

StatusOr<SchedDiffReport> RunSchedDiff(const hsim::ScenarioSpec& spec,
                                       const SchedDiffOptions& options) {
  SchedDiffConfig a = options.a;
  SchedDiffConfig b = options.b;
  if (a.label.empty()) a.label = "a";
  if (b.label.empty()) b.label = "b";

  auto run_a = RunOne(spec, a, options.duration, options.fault_spec);
  if (!run_a.ok()) {
    return run_a.status();
  }
  auto run_b = RunOne(spec, b, options.duration, options.fault_spec);
  if (!run_b.ok()) {
    return run_b.status();
  }

  SchedDiffReport report;
  report.a = run_a->summary;
  report.b = run_b->summary;

  // Per-leaf service. Shares are fractions of the leaves' combined service, so they
  // compare cleanly even when one configuration idles more.
  Work total_a = 0;
  Work total_b = 0;
  struct LeafServices {
    uint64_t weight;
    Work a;
    Work b;
  };
  std::vector<std::pair<std::string, LeafServices>> services;
  for (const hsim::ScenarioNodeSpec& node : spec.nodes) {
    if (!node.is_leaf) {
      continue;
    }
    Work sa = 0;
    Work sb = 0;
    if (auto id = run_a->analyzer->NodeByPath(node.path); id.ok()) {
      sa = run_a->analyzer->nodes().at(*id).total_service;
    }
    if (auto id = run_b->analyzer->NodeByPath(node.path); id.ok()) {
      sb = run_b->analyzer->nodes().at(*id).total_service;
    }
    total_a += sa;
    total_b += sb;
    services.emplace_back(node.path, LeafServices{node.weight, sa, sb});
  }
  for (const auto& [path, s] : services) {
    LeafDiff diff;
    diff.path = path;
    diff.weight = s.weight;
    diff.service_a = s.a;
    diff.service_b = s.b;
    diff.share_a = total_a > 0 ? static_cast<double>(s.a) / static_cast<double>(total_a)
                               : 0.0;
    diff.share_b = total_b > 0 ? static_cast<double>(s.b) / static_cast<double>(total_b)
                               : 0.0;
    diff.share_delta = diff.share_b - diff.share_a;
    diff.rt_a = RtSummaryFor(*run_a->analyzer, path);
    diff.rt_b = RtSummaryFor(*run_b->analyzer, path);
    diff.miss_rate_delta = diff.rt_b.miss_rate - diff.rt_a.miss_rate;
    report.leaves.push_back(std::move(diff));
  }

  // §3 fairness gaps over the full run window for every sibling-leaf pair.
  for (const auto& [f, g] : SiblingLeafPairs(spec)) {
    SiblingGap gap;
    gap.f = f;
    gap.g = g;
    const auto fa = run_a->analyzer->NodeByPath(f);
    const auto ga = run_a->analyzer->NodeByPath(g);
    if (fa.ok() && ga.ok()) {
      gap.gap_a = run_a->analyzer->FairnessGap(*fa, *ga, run_a->analyzer->first_time(),
                                               run_a->analyzer->last_time());
    }
    const auto fb = run_b->analyzer->NodeByPath(f);
    const auto gb = run_b->analyzer->NodeByPath(g);
    if (fb.ok() && gb.ok()) {
      gap.gap_b = run_b->analyzer->FairnessGap(*fb, *gb, run_b->analyzer->first_time(),
                                               run_b->analyzer->last_time());
    }
    report.sibling_gaps.push_back(std::move(gap));
  }

  // Wakeup -> dispatch latencies, correlated by source thread id.
  for (const hsim::ScenarioThreadSpec& thread : spec.threads) {
    ThreadLatencyDiff diff;
    diff.source_id = thread.source_id;
    diff.name = thread.name;
    if (auto it = run_a->source_to_thread.find(thread.source_id);
        it != run_a->source_to_thread.end()) {
      diff.a = SummarizeLatencies(run_a->analyzer->DispatchLatencies(it->second));
    }
    if (auto it = run_b->source_to_thread.find(thread.source_id);
        it != run_b->source_to_thread.end()) {
      diff.b = SummarizeLatencies(run_b->analyzer->DispatchLatencies(it->second));
    }
    report.latencies.push_back(std::move(diff));
  }
  return report;
}

StatusOr<SchedDiffReport> RunSchedDiff(const SynthScenario& scenario,
                                       const SchedDiffOptions& options) {
  SynthOptions unused;  // seeds already live in each thread's spec
  return RunSchedDiff(ToScenarioSpec(scenario, unused), options);
}

Status WriteSchedDiffJson(const SchedDiffReport& report, const std::string& path) {
  std::string out = "{\n  \"a\": {\n";
  AppendRunSummary(out, report.a, "    ");
  out += "  },\n  \"b\": {\n";
  AppendRunSummary(out, report.b, "    ");
  out += "  },\n  \"leaves\": [\n";
  for (size_t i = 0; i < report.leaves.size(); ++i) {
    const LeafDiff& leaf = report.leaves[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        ", \"weight\": %llu, \"service_a_ns\": %lld, \"service_b_ns\": "
        "%lld, \"share_a\": %.6f, \"share_b\": %.6f, \"share_delta\": %.6f, "
        "\"releases_a\": %llu, \"misses_a\": %llu, \"miss_rate_a\": %.6f, "
        "\"tardiness_p50_a_ns\": %lld, \"tardiness_p99_a_ns\": %lld, "
        "\"releases_b\": %llu, \"misses_b\": %llu, \"miss_rate_b\": %.6f, "
        "\"tardiness_p50_b_ns\": %lld, \"tardiness_p99_b_ns\": %lld, "
        "\"miss_rate_delta\": %.6f}",
        static_cast<unsigned long long>(leaf.weight),
        static_cast<long long>(leaf.service_a), static_cast<long long>(leaf.service_b),
        leaf.share_a, leaf.share_b, leaf.share_delta,
        static_cast<unsigned long long>(leaf.rt_a.releases),
        static_cast<unsigned long long>(leaf.rt_a.misses), leaf.rt_a.miss_rate,
        static_cast<long long>(leaf.rt_a.tardiness_p50),
        static_cast<long long>(leaf.rt_a.tardiness_p99),
        static_cast<unsigned long long>(leaf.rt_b.releases),
        static_cast<unsigned long long>(leaf.rt_b.misses), leaf.rt_b.miss_rate,
        static_cast<long long>(leaf.rt_b.tardiness_p50),
        static_cast<long long>(leaf.rt_b.tardiness_p99), leaf.miss_rate_delta);
    out += "    {\"path\": " + JsonString(leaf.path) + buf;
    out += i + 1 < report.leaves.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"sibling_gaps\": [\n";
  for (size_t i = 0; i < report.sibling_gaps.size(); ++i) {
    const SiblingGap& gap = report.sibling_gaps[i];
    char buf[128];
    std::snprintf(buf, sizeof(buf), ", \"gap_a_ns\": %.1f, \"gap_b_ns\": %.1f}",
                  gap.gap_a, gap.gap_b);
    out += "    {\"f\": " + JsonString(gap.f) + ", \"g\": " + JsonString(gap.g) + buf;
    out += i + 1 < report.sibling_gaps.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"latencies\": [\n";
  for (size_t i = 0; i < report.latencies.size(); ++i) {
    const ThreadLatencyDiff& diff = report.latencies[i];
    out += "    {\"source_id\": " + std::to_string(diff.source_id) +
           ", \"name\": " + JsonString(diff.name) + ", \"a\": ";
    AppendLatency(out, diff.a);
    out += ", \"b\": ";
    AppendLatency(out, diff.b);
    out += "}";
    out += i + 1 < report.latencies.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgument("cannot open '" + path + "' for writing");
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return Status::Ok();
}

std::string FormatSchedDiffReport(const SchedDiffReport& report) {
  char buf[256];
  std::string out;
  for (const RunSummary* run : {&report.a, &report.b}) {
    std::snprintf(buf, sizeof(buf),
                  "[%s] scheduler=%s cpus=%d%s duration=%.3fs events=%llu "
                  "service=%.3fs violations=%llu (fairness %llu)\n",
                  run->label.c_str(), run->scheduler.c_str(), run->cpus,
                  run->sharded ? (run->steal ? " sharded" : " sharded,no-steal") : "",
                  static_cast<double>(run->duration) / hscommon::kSecond,
                  static_cast<unsigned long long>(run->events),
                  static_cast<double>(run->total_service) / hscommon::kSecond,
                  static_cast<unsigned long long>(run->violations),
                  static_cast<unsigned long long>(run->fairness_violations));
    out += buf;
    if (run->cpus > 1) {
      for (const CpuSummary& c : run->per_cpu) {
        std::snprintf(buf, sizeof(buf),
                      "  cpu%-2d util=%5.1f%% dispatches=%-8llu steals=%-6llu "
                      "rebalances=%llu\n",
                      c.cpu, 100.0 * c.utilization,
                      static_cast<unsigned long long>(c.dispatches),
                      static_cast<unsigned long long>(c.steals),
                      static_cast<unsigned long long>(c.rebalances));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "  migration rate: %.1f/s\n",
                    run->migration_rate_hz);
      out += buf;
    }
  }
  out += "per-leaf service shares:\n";
  for (const LeafDiff& leaf : report.leaves) {
    std::snprintf(buf, sizeof(buf),
                  "  %-24s w=%-4llu  %s=%6.2f%%  %s=%6.2f%%  delta=%+6.2f%%\n",
                  leaf.path.c_str(), static_cast<unsigned long long>(leaf.weight),
                  report.a.label.c_str(), 100.0 * leaf.share_a, report.b.label.c_str(),
                  100.0 * leaf.share_b, 100.0 * leaf.share_delta);
    out += buf;
  }
  // Deadline metrics only when some leaf actually ran deadline-stamped work.
  bool any_rt = false;
  for (const LeafDiff& leaf : report.leaves) {
    any_rt |= leaf.rt_a.releases > 0 || leaf.rt_b.releases > 0 ||
              leaf.rt_a.misses > 0 || leaf.rt_b.misses > 0;
  }
  if (any_rt) {
    out += "per-leaf deadline metrics (miss rate, tardiness p50/p99 us):\n";
    for (const LeafDiff& leaf : report.leaves) {
      if (leaf.rt_a.releases == 0 && leaf.rt_b.releases == 0 &&
          leaf.rt_a.misses == 0 && leaf.rt_b.misses == 0) {
        continue;
      }
      std::snprintf(
          buf, sizeof(buf),
          "  %-24s %s=%5.2f%% (%llu/%llu) %lld/%lld  %s=%5.2f%% (%llu/%llu) "
          "%lld/%lld  delta=%+.2f%%\n",
          leaf.path.c_str(), report.a.label.c_str(), 100.0 * leaf.rt_a.miss_rate,
          static_cast<unsigned long long>(leaf.rt_a.misses),
          static_cast<unsigned long long>(leaf.rt_a.releases),
          static_cast<long long>(leaf.rt_a.tardiness_p50 / hscommon::kMicrosecond),
          static_cast<long long>(leaf.rt_a.tardiness_p99 / hscommon::kMicrosecond),
          report.b.label.c_str(), 100.0 * leaf.rt_b.miss_rate,
          static_cast<unsigned long long>(leaf.rt_b.misses),
          static_cast<unsigned long long>(leaf.rt_b.releases),
          static_cast<long long>(leaf.rt_b.tardiness_p50 / hscommon::kMicrosecond),
          static_cast<long long>(leaf.rt_b.tardiness_p99 / hscommon::kMicrosecond),
          100.0 * leaf.miss_rate_delta);
      out += buf;
    }
  }
  if (!report.sibling_gaps.empty()) {
    out += "sibling fairness gaps (ns of service per unit weight, full window):\n";
    for (const SiblingGap& gap : report.sibling_gaps) {
      std::snprintf(buf, sizeof(buf), "  %s vs %s:  %s=%.0f  %s=%.0f\n", gap.f.c_str(),
                    gap.g.c_str(), report.a.label.c_str(), gap.gap_a,
                    report.b.label.c_str(), gap.gap_b);
      out += buf;
    }
  }
  out += "wakeup->dispatch latency (p50/p99 us):\n";
  for (const ThreadLatencyDiff& diff : report.latencies) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %s=%lld/%lld (n=%llu)  %s=%lld/%lld (n=%llu)\n",
                  diff.name.c_str(), report.a.label.c_str(),
                  static_cast<long long>(diff.a.p50_ns / hscommon::kMicrosecond),
                  static_cast<long long>(diff.a.p99_ns / hscommon::kMicrosecond),
                  static_cast<unsigned long long>(diff.a.count),
                  report.b.label.c_str(),
                  static_cast<long long>(diff.b.p50_ns / hscommon::kMicrosecond),
                  static_cast<long long>(diff.b.p99_ns / hscommon::kMicrosecond),
                  static_cast<unsigned long long>(diff.b.count));
    out += buf;
  }
  return out;
}

StatusOr<RunSummary> ReplayAndCheck(const hsim::ScenarioSpec& spec,
                                    const SchedDiffConfig& config, Time duration,
                                    const std::string& fault_spec) {
  auto run = RunOne(spec, config, duration, fault_spec);
  if (!run.ok()) {
    return run.status();
  }
  if (run->summary.dropped != 0) {
    return InvalidArgument("replay trace lost " +
                           std::to_string(run->summary.dropped) +
                           " events to ring wraparound; verdict would be unsound");
  }
  return run->summary;
}

StatusOr<RunSummary> ReplayAndCheck(const SynthScenario& scenario,
                                    const SchedDiffConfig& config, Time duration,
                                    const std::string& fault_spec) {
  SynthOptions unused;
  return ReplayAndCheck(ToScenarioSpec(scenario, unused), config, duration, fault_spec);
}

}  // namespace hsynth
