// Differential scheduler comparison: instantiate ONE scenario under two
// scheduler/CPU configurations, run both deterministically, and report what changed —
// per-leaf service shares, §3 sibling fairness gaps, per-thread wakeup->dispatch
// latency distributions, and (for deadline-stamped workloads) per-leaf miss rates and
// tardiness percentiles — plus each run's invariant-checker verdict. The core runs on
// any hsim::ScenarioSpec (hand-built, rt scenario pack, or synthesized); the
// SynthScenario overloads delegate through ToScenarioSpec. Machine-readable via
// WriteSchedDiffJson (schema in docs/observability.md), human-readable via
// FormatSchedDiffReport. tools/sched_diff is the CLI.

#ifndef HSCHED_SRC_SYNTH_SCHED_DIFF_H_
#define HSCHED_SRC_SYNTH_SCHED_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/synth/synthesize.h"

namespace hsynth {

// One side of the comparison.
struct SchedDiffConfig {
  std::string label;      // "a"/"b" by default; shown in reports
  // Leaf-scheduler registry name (src/sched/registry.h) applied to every leaf whose
  // spec names no scheduler — i.e. all leaves of a synthesized scenario.
  std::string scheduler = "sfq";
  int cpus = 1;
  // Per-CPU run-queue shards (src/sim/shard.h) instead of the shared weight-tree
  // walk; the checker then runs with the sharded profile (shard keys, not per-node
  // SFQ tags, order picks, and sibling gaps widen by the steal window).
  bool sharded = false;
  // Work stealing between shards (only meaningful with sharded). Turning it off
  // demonstrates the stranded-shard failure mode.
  bool steal = true;
};

struct SchedDiffOptions {
  SchedDiffConfig a;
  SchedDiffConfig b;
  Time duration = 0;       // 0 = the scenario's horizon
  // Optional fault-plan spec (src/fault grammar) applied identically to both runs.
  std::string fault_spec;
};

// Real-time metric family of one leaf under one configuration, folded from the
// kAdmit/kDeadlineMiss trace events (all zero for leaves without deadline-stamped
// workloads). miss_rate is misses / max(releases, misses) — a conservative upper
// bound, since an overrunning thread chains jobs without a fresh wakeup.
struct LeafRtSummary {
  uint64_t releases = 0;
  uint64_t misses = 0;
  double miss_rate = 0;
  Time tardiness_p50 = 0;  // nearest-rank percentiles over the missed jobs (ns)
  Time tardiness_p99 = 0;
};

// Per-leaf service comparison. Shares are fractions of the run's total leaf service.
struct LeafDiff {
  std::string path;
  uint64_t weight = 1;
  Work service_a = 0;
  Work service_b = 0;
  double share_a = 0;
  double share_b = 0;
  double share_delta = 0;  // share_b - share_a
  LeafRtSummary rt_a;
  LeafRtSummary rt_b;
  double miss_rate_delta = 0;  // rt_b.miss_rate - rt_a.miss_rate
};

// §3 gap |W_f/r_f − W_g/r_g| between two sibling leaves over the whole run window, in
// nanoseconds of service per unit weight, under each configuration.
struct SiblingGap {
  std::string f;
  std::string g;
  double gap_a = 0;
  double gap_b = 0;
};

struct LatencyStats {
  uint64_t count = 0;
  double mean_ns = 0;
  Time p50_ns = 0;
  Time p99_ns = 0;
  Time max_ns = 0;
};

// Wakeup -> dispatch latency of one source thread under each configuration.
struct ThreadLatencyDiff {
  uint64_t source_id = 0;
  std::string name;
  LatencyStats a;
  LatencyStats b;
};

// One CPU's share of a run: decisions made, service delivered, traced idle time,
// and (on sharded runs) the migration traffic that landed on it.
struct CpuSummary {
  int cpu = 0;
  uint64_t dispatches = 0;
  Work busy = 0;
  Time idle = 0;
  uint64_t steals = 0;
  uint64_t rebalances = 0;
  double utilization = 0.0;  // busy / (busy + idle)
};

// One configuration's run, summarized.
struct RunSummary {
  std::string label;
  std::string scheduler;
  int cpus = 1;
  bool sharded = false;
  bool steal = true;
  Time duration = 0;
  uint64_t events = 0;
  uint64_t dropped = 0;       // tracer ring drops (0 = complete trace)
  Work total_service = 0;
  uint64_t violations = 0;          // invariant-checker total
  uint64_t fairness_violations = 0; // the kFairnessGap subset
  std::string checker_report;       // "clean" or one line per violation
  std::vector<CpuSummary> per_cpu;  // one entry per CPU, ordered by id
  double migration_rate_hz = 0;     // (steals + rebalances) per simulated second
};

struct SchedDiffReport {
  RunSummary a;
  RunSummary b;
  std::vector<LeafDiff> leaves;
  std::vector<SiblingGap> sibling_gaps;
  std::vector<ThreadLatencyDiff> latencies;
};

// Runs the scenario under both configurations and diffs them. The ScenarioSpec form
// is the core: any leaf whose spec names no scheduler gets each side's
// `scheduler` (so rt-pack and synthesized scenarios compare class schedulers, while
// pinned leaves stay identical across both runs).
hscommon::StatusOr<SchedDiffReport> RunSchedDiff(const hsim::ScenarioSpec& spec,
                                                 const SchedDiffOptions& options);
hscommon::StatusOr<SchedDiffReport> RunSchedDiff(const SynthScenario& scenario,
                                                 const SchedDiffOptions& options);

// Stable-key JSON, suitable for diffing and machine consumption.
hscommon::Status WriteSchedDiffJson(const SchedDiffReport& report,
                                    const std::string& path);

// Multi-line human-readable summary.
std::string FormatSchedDiffReport(const SchedDiffReport& report);

// The CI roundtrip gate: run the scenario under ONE configuration and invariant-check
// the replayed trace. Returns the run summary (callers gate on violations == 0; a
// truncated replay trace is an error, not a checker pass).
hscommon::StatusOr<RunSummary> ReplayAndCheck(const hsim::ScenarioSpec& spec,
                                              const SchedDiffConfig& config,
                                              Time duration = 0,
                                              const std::string& fault_spec = "");
hscommon::StatusOr<RunSummary> ReplayAndCheck(const SynthScenario& scenario,
                                              const SchedDiffConfig& config,
                                              Time duration = 0,
                                              const std::string& fault_spec = "");

}  // namespace hsynth

#endif  // HSCHED_SRC_SYNTH_SCHED_DIFF_H_
