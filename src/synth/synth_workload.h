// The workload model fitted from a trace: per-thread burst/sleep behaviour extracted
// from a TraceAnalyzer's episode stream, replayable either exactly or as a seeded
// bootstrap over the empirical distributions.
//
// Fidelity note: traces record SERVICE time (CPU attained per episode), not wall-clock
// demand. Under the same scheduler configuration an exact replay reproduces the source
// schedule; under a different configuration the bursts keep their service demand but
// their wall-clock extent — and hence everything downstream of preemption timing —
// legitimately differs. That is the point of the differential harness: hold demand
// fixed, vary the scheduler. See docs/observability.md "From trace to workload".

#ifndef HSCHED_SRC_SYNTH_SYNTH_WORKLOAD_H_
#define HSCHED_SRC_SYNTH_SYNTH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/prng.h"
#include "src/common/types.h"
#include "src/sim/workload.h"

namespace hsynth {

using hscommon::Time;
using hscommon::Work;

// How a fitted workload regenerates behaviour.
enum class FitMode {
  // Replay the recorded episodes verbatim, then exit (or keep sleeping forever when the
  // source thread was still alive at the trace horizon). Highest fidelity; bounded by
  // the source trace's length.
  kExactReplay,
  // Bootstrap-resample the empirical burst and sleep distributions with a seeded Prng,
  // forever. Unbounded, statistically faithful, not timeline-faithful.
  kHistogram,
};

// How exact-replay sleeps are anchored.
enum class SleepAnchor {
  // Sleep for (next wake − this block) relative to the replayed block time. Robust to
  // schedule drift; inter-episode gaps keep their duration.
  kRelative,
  // Sleep until the source trace's absolute wake time (skipped when the replay is
  // already past it). Keeps arrivals phase-aligned with the source timeline.
  kAbsolute,
};

// One fitted episode: compute `compute`, then sleep. `sleep` is the relative gap to the
// next wake; `abs_wake` is the source trace's absolute time of the next wake (0 after
// the final episode).
struct SynthRecord {
  Work compute = 0;
  Time sleep = 0;
  Time abs_wake = 0;
};

// A Workload regenerating one thread's fitted behaviour.
class SynthesizedWorkload : public hsim::Workload {
 public:
  struct Spec {
    std::vector<SynthRecord> records;  // fitted episodes, time order
    FitMode mode = FitMode::kExactReplay;
    SleepAnchor anchor = SleepAnchor::kRelative;
    uint64_t seed = 1;      // histogram mode resampling stream
    // The source thread was still alive (blocked or mid-burst) at the trace horizon; in
    // exact mode the replay sleeps forever instead of exiting after the last record.
    bool truncated = false;
  };

  explicit SynthesizedWorkload(Spec spec);

  hsim::WorkloadAction NextAction(Time now) override;

 private:
  hsim::WorkloadAction NextExact(Time now);
  hsim::WorkloadAction NextHistogram(Time now);

  Spec spec_;
  hscommon::Prng prng_;
  // Histogram-mode sample pools (built once from the records).
  std::vector<Work> burst_pool_;
  std::vector<Time> sleep_pool_;
  size_t index_ = 0;
  bool sleeping_next_ = false;  // the current record's sleep phase is pending
};

}  // namespace hsynth

#endif  // HSCHED_SRC_SYNTH_SYNTH_WORKLOAD_H_
