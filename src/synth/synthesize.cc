#include "src/synth/synthesize.h"

namespace hsynth {

using hscommon::InvalidArgument;
using hscommon::StatusOr;
using htrace::TraceAnalyzer;

namespace {

// A per-thread seed stream derived from the base seed: deterministic, distinct per
// source thread, stable across runs (the roundtrip/determinism tests rely on this).
uint64_t ThreadSeed(uint64_t base, uint64_t source_id) {
  return base * 1000003ULL + source_id;
}

}  // namespace

StatusOr<SynthScenario> Synthesize(const TraceAnalyzer& analyzer,
                                   const SynthOptions& options) {
  if (analyzer.truncated()) {
    return InvalidArgument(
        "trace lost " + std::to_string(analyzer.dropped()) +
        " events to ring wraparound; tree and arrival reconstruction would be unsound "
        "(enlarge the tracer ring and re-capture)");
  }
  SynthScenario scenario;
  scenario.horizon = analyzer.last_time();
  scenario.source_cpus = analyzer.cpus();

  // Node ids are assigned in creation order, so iterating the id-keyed map already
  // yields parents before children.
  for (const auto& [id, node] : analyzer.nodes()) {
    if (id == 0 || node.removed || node.path.rfind("node:", 0) == 0) {
      continue;  // root is implicit; pre-trace placeholders have no known parent
    }
    scenario.nodes.push_back(SynthNode{node.path, node.weight, node.is_leaf});
  }

  for (const TraceAnalyzer::ThreadActivity& activity : analyzer.ThreadActivities()) {
    const auto leaf_it = analyzer.nodes().find(activity.leaf);
    if (leaf_it == analyzer.nodes().end() || !leaf_it->second.is_leaf ||
        leaf_it->second.path.rfind("node:", 0) == 0) {
      continue;  // never attached anywhere reconstructable
    }
    SynthThread thread;
    thread.source_id = activity.thread;
    thread.name = activity.name.empty() ? "t" + std::to_string(activity.thread)
                                        : activity.name;
    thread.leaf_path = leaf_it->second.path;
    thread.weight = activity.weight;
    thread.spec.mode = options.mode;
    thread.spec.anchor = options.anchor;
    thread.spec.seed = ThreadSeed(options.seed, activity.thread);
    thread.spec.truncated = !activity.ends_blocked;

    // One fitted record per episode with nonzero service (an episode that attained no
    // service before blocking again is invisible to the scheduler being compared, and
    // Compute(0) is not a valid action). The record's sleep is the gap to the next KEPT
    // episode's wake, so dropped episodes merge into the surrounding gap.
    bool have_start = false;
    for (const TraceAnalyzer::ThreadBurst& burst : activity.bursts) {
      if (burst.service <= 0) {
        continue;
      }
      if (!have_start) {
        thread.start = burst.wake;
        have_start = true;
      }
      if (!thread.spec.records.empty()) {
        SynthRecord& prev = thread.spec.records.back();
        prev.abs_wake = burst.wake;
        prev.sleep = burst.wake > prev.sleep ? burst.wake - prev.sleep : 0;
      }
      // Stash this episode's block time in `sleep` until the next kept episode fixes
      // the gap up; the final record's sleep stays 0 (no recorded successor).
      thread.spec.records.push_back(SynthRecord{burst.service, burst.block, 0});
    }
    if (!thread.spec.records.empty()) {
      thread.spec.records.back().sleep = 0;
    } else {
      thread.start = activity.attach_time;
    }
    scenario.threads.push_back(std::move(thread));
  }
  if (scenario.threads.empty()) {
    return InvalidArgument("trace contains no threads attached to a known leaf");
  }
  return scenario;
}

hsim::ScenarioSpec ToScenarioSpec(const SynthScenario& scenario,
                                  const SynthOptions& options) {
  (void)options;  // seeds were derived at Synthesize time and live in each spec
  hsim::ScenarioSpec spec;
  spec.horizon = scenario.horizon;
  for (const SynthNode& node : scenario.nodes) {
    spec.nodes.push_back(
        hsim::ScenarioNodeSpec{node.path, node.weight, node.is_leaf, ""});
  }
  for (const SynthThread& thread : scenario.threads) {
    hsim::ScenarioThreadSpec t;
    t.name = thread.name;
    t.leaf_path = thread.leaf_path;
    t.params.weight = thread.weight;
    t.start_time = thread.start;
    t.source_id = thread.source_id;
    const SynthesizedWorkload::Spec workload_spec = thread.spec;
    t.make_workload = [workload_spec] {
      return std::unique_ptr<hsim::Workload>(
          std::make_unique<SynthesizedWorkload>(workload_spec));
    };
    spec.threads.push_back(std::move(t));
  }
  return spec;
}

}  // namespace hsynth
