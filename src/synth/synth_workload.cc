#include "src/synth/synth_workload.h"

#include <algorithm>

namespace hsynth {

using hsim::WorkloadAction;

SynthesizedWorkload::SynthesizedWorkload(Spec spec)
    : spec_(std::move(spec)), prng_(spec_.seed) {
  if (spec_.mode == FitMode::kHistogram) {
    for (size_t i = 0; i < spec_.records.size(); ++i) {
      burst_pool_.push_back(spec_.records[i].compute);
      // The final record's sleep is absent (nothing woke the thread again), not an
      // observed zero-length gap — keep it out of the pool.
      if (i + 1 < spec_.records.size()) {
        sleep_pool_.push_back(spec_.records[i].sleep);
      }
    }
  }
}

WorkloadAction SynthesizedWorkload::NextAction(Time now) {
  return spec_.mode == FitMode::kExactReplay ? NextExact(now) : NextHistogram(now);
}

WorkloadAction SynthesizedWorkload::NextExact(Time now) {
  if (sleeping_next_) {
    sleeping_next_ = false;
    const SynthRecord& r = spec_.records[index_];
    ++index_;
    if (index_ >= spec_.records.size()) {
      // The sleep after the final episode has no recorded end.
      return spec_.truncated ? WorkloadAction::SleepUntil(hscommon::kTimeInfinity)
                             : WorkloadAction::Exit();
    }
    const Time wake = spec_.anchor == SleepAnchor::kAbsolute ? r.abs_wake : now + r.sleep;
    if (wake > now) {
      return WorkloadAction::SleepUntil(wake);
    }
    // Already past the anchor (schedule ran slower than the source): run immediately.
  }
  if (index_ >= spec_.records.size()) {
    return spec_.truncated ? WorkloadAction::SleepUntil(hscommon::kTimeInfinity)
                           : WorkloadAction::Exit();
  }
  sleeping_next_ = true;
  return WorkloadAction::Compute(spec_.records[index_].compute);
}

WorkloadAction SynthesizedWorkload::NextHistogram(Time now) {
  if (burst_pool_.empty()) {
    return WorkloadAction::Exit();  // source thread never ran
  }
  if (sleeping_next_) {
    sleeping_next_ = false;
    if (!sleep_pool_.empty()) {
      const Time sleep = sleep_pool_[prng_.UniformU64(sleep_pool_.size())];
      if (sleep > 0) {
        return WorkloadAction::SleepUntil(now + sleep);
      }
    }
    // No observed gaps: the source was effectively CPU-bound; chain bursts.
  }
  sleeping_next_ = true;
  return WorkloadAction::Compute(
      std::max<Work>(1, burst_pool_[prng_.UniformU64(burst_pool_.size())]));
}

}  // namespace hsynth
