#include "src/runtime/executor.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace hrt {

Executor::Executor() : Executor(Config{}) {}

Executor::Executor(const Config& config) : config_(config) {}

hscommon::Time Executor::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

hscommon::StatusOr<ThreadId> Executor::Spawn(std::string name, NodeId leaf,
                                             const ThreadParams& params,
                                             std::function<StepResult()> step) {
  return Spawn(std::move(name), leaf, params,
               [step = std::move(step)](TaskControl&) { return step(); });
}

hscommon::StatusOr<ThreadId> Executor::Spawn(std::string name, NodeId leaf,
                                             const ThreadParams& params,
                                             std::function<StepResult(TaskControl&)> step) {
  const ThreadId id = tasks_.size();
  if (auto s = tree_.AttachThread(id, leaf, params); !s.ok()) {
    return s;
  }
  auto task = std::make_unique<Task>();
  task->name = std::move(name);
  task->step = std::move(step);
  tasks_.push_back(std::move(task));
  ++live_tasks_;
  tree_.SetRun(id, NowNs());
  return id;
}

void Executor::WakeDueSleepers(hscommon::Time now) {
  if (sleeping_tasks_ == 0) {
    return;
  }
  for (ThreadId id = 0; id < tasks_.size(); ++id) {
    Task& task = *tasks_[id];
    if (task.sleeping && task.wake_at <= now) {
      task.sleeping = false;
      --sleeping_tasks_;
      tree_.SetRun(id, now);
    }
  }
}

hscommon::Time Executor::NextWake() const {
  hscommon::Time next = 0;
  for (const auto& task : tasks_) {
    if (task->sleeping && (next == 0 || task->wake_at < next)) {
      next = task->wake_at;
    }
  }
  return next;
}

bool Executor::DispatchOnce() {
  WakeDueSleepers(NowNs());
  if (!tree_.HasRunnable()) {
    // Idle: if tasks are sleeping, wait (really) for the earliest wake.
    const hscommon::Time next = NextWake();
    if (next == 0) {
      return false;
    }
    const hscommon::Time now = NowNs();
    if (next > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(next - now));
    }
    WakeDueSleepers(NowNs());
    if (!tree_.HasRunnable()) {
      return live_tasks_ > 0;  // spurious; try again next cycle
    }
  }
  const hscommon::Time t0 = NowNs();
  const ThreadId id = tree_.Schedule(t0);
  assert(id != hsfq::kInvalidThread);
  Task& task = *tasks_[id];
  ++dispatches_;

  bool still_runnable = true;
  hscommon::Time now = t0;
  TaskControl ctl;
  while (now - t0 < config_.quantum) {
    const StepResult result = task.step(ctl);
    now = NowNs();
    if (result == StepResult::kDone) {
      task.done = true;
      still_runnable = false;
      --live_tasks_;
      break;
    }
    if (result == StepResult::kSleep) {
      task.sleeping = true;
      task.wake_at = now + ctl.sleep_for_;
      ++sleeping_tasks_;
      still_runnable = false;
      break;
    }
    if (result == StepResult::kYield) {
      break;
    }
  }
  const hscommon::Work used = now - t0;
  task.cpu_time += used;
  tree_.Update(id, used, now, still_runnable);
  return true;
}

void Executor::Run() {
  while (live_tasks_ > 0 && DispatchOnce()) {
  }
}

void Executor::RunFor(hscommon::Time duration) {
  const hscommon::Time deadline = NowNs() + duration;
  while (NowNs() < deadline && live_tasks_ > 0) {
    if (!DispatchOnce()) {
      break;
    }
  }
}

hscommon::Work Executor::CpuTimeOf(ThreadId task) const { return tasks_[task]->cpu_time; }

const std::string& Executor::NameOf(ThreadId task) const { return tasks_[task]->name; }

}  // namespace hrt
