// A real (non-simulated) user-level task runtime scheduled by the hierarchical SFQ
// framework — the "user-level thread scheduler" face of the library.
//
// Tasks are cooperative step functions: the executor dispatches the task chosen by
// SchedulingStructure::Schedule(), invokes its step repeatedly until the quantum (real
// CPU time, measured with a monotonic clock) is exhausted or the task yields/finishes,
// then charges the measured time through SchedulingStructure::Update(). This exercises
// the exact kernel-hook cycle of the paper on real hardware, and the quickstart and
// userlevel_runtime examples are built on it.

#ifndef HSCHED_SRC_RUNTIME_EXECUTOR_H_
#define HSCHED_SRC_RUNTIME_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hsfq/structure.h"

namespace hrt {

using hsfq::NodeId;
using hsfq::ThreadId;
using hsfq::ThreadParams;

// What a task's step tells the executor.
enum class StepResult {
  kMore,   // more work; keep scheduling me
  kYield,  // more work, but end my quantum early (cooperative yield)
  kSleep,  // block me for the duration passed to TaskControl::SleepFor
  kDone,   // finished; remove me
};

// Per-step control surface handed to extended step functions.
class TaskControl {
 public:
  // Arms a sleep; return StepResult::kSleep from the step to take effect.
  void SleepFor(hscommon::Time duration) { sleep_for_ = duration; }

 private:
  friend class Executor;
  hscommon::Time sleep_for_ = 0;
};

class Executor {
 public:
  struct Config {
    // Real-CPU-time slice per dispatch.
    hscommon::Work quantum = 2 * hscommon::kMillisecond;
  };

  Executor();
  explicit Executor(const Config& config);

  // The scheduling structure; build class nodes through this before spawning tasks.
  hsfq::SchedulingStructure& tree() { return tree_; }

  // Spawns a task in `leaf`. `step` is called repeatedly; each call should do a small
  // chunk of work (tens of microseconds) and return its status.
  hscommon::StatusOr<ThreadId> Spawn(std::string name, NodeId leaf,
                                     const ThreadParams& params,
                                     std::function<StepResult()> step);

  // Extended spawn: the step receives a TaskControl and may sleep
  // (ctl.SleepFor(...) + return StepResult::kSleep). The executor wakes the task after
  // the duration elapses — real wall-clock time.
  hscommon::StatusOr<ThreadId> Spawn(std::string name, NodeId leaf,
                                     const ThreadParams& params,
                                     std::function<StepResult(TaskControl&)> step);

  // Runs until every task reports kDone.
  void Run();

  // Runs dispatch cycles for approximately `duration` of real time (for demos).
  void RunFor(hscommon::Time duration);

  // Measured CPU time a task has attained so far (ns).
  hscommon::Work CpuTimeOf(ThreadId task) const;

  const std::string& NameOf(ThreadId task) const;
  size_t live_tasks() const { return live_tasks_; }
  uint64_t dispatches() const { return dispatches_; }

 private:
  struct Task {
    std::string name;
    std::function<StepResult(TaskControl&)> step;
    hscommon::Work cpu_time = 0;
    hscommon::Time wake_at = 0;  // sleeping until this monotonic instant
    bool sleeping = false;
    bool done = false;
  };

  // Monotonic clock in nanoseconds.
  static hscommon::Time NowNs();

  // One dispatch cycle; returns false when nothing is runnable (after waking any due
  // sleepers). Blocks (real sleep) until the next sleeper is due if the tree is idle but
  // sleepers exist.
  bool DispatchOnce();

  // Marks due sleepers runnable again.
  void WakeDueSleepers(hscommon::Time now);
  // Earliest pending wake time, or 0 when none.
  hscommon::Time NextWake() const;

  Config config_;
  hsfq::SchedulingStructure tree_;
  std::vector<std::unique_ptr<Task>> tasks_;
  size_t live_tasks_ = 0;
  size_t sleeping_tasks_ = 0;
  uint64_t dispatches_ = 0;
};

}  // namespace hrt

#endif  // HSCHED_SRC_RUNTIME_EXECUTOR_H_
