#include "src/qos/admission.h"

#include <cassert>
#include <cmath>

namespace hqos {

hscommon::Status DeterministicAdmission::CheckSet(const std::vector<Task>& tasks) const {
  double utilization = 0.0;
  for (const Task& t : tasks) {
    utilization += static_cast<double>(t.computation) / static_cast<double>(t.period);
  }
  if (utilization > server_.rate + 1e-12) {
    return hscommon::ResourceExhausted("utilization exceeds the class rate");
  }
  // Per-task response check: in the worst case the class's server owes `delta` work, and
  // every other task's computation may precede a job once (EDF within the class).
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    const Time deadline = t.relative_deadline > 0 ? t.relative_deadline : t.period;
    double demand = static_cast<double>(t.computation) + server_.delta;
    for (size_t j = 0; j < tasks.size(); ++j) {
      if (j != i) {
        demand += static_cast<double>(tasks[j].computation);
      }
    }
    const double response = demand / server_.rate;
    if (response > static_cast<double>(deadline)) {
      return hscommon::ResourceExhausted("worst-case response time misses a deadline");
    }
  }
  return hscommon::Status::Ok();
}

hscommon::Status DeterministicAdmission::Check(const Task& candidate) const {
  if (candidate.period <= 0 || candidate.computation <= 0) {
    return hscommon::InvalidArgument("task needs period > 0 and computation > 0");
  }
  std::vector<Task> tasks = admitted_;
  tasks.push_back(candidate);
  return CheckSet(tasks);
}

hscommon::Status DeterministicAdmission::Admit(const Task& candidate) {
  if (auto s = Check(candidate); !s.ok()) {
    return s;
  }
  admitted_.push_back(candidate);
  utilization_ +=
      static_cast<double>(candidate.computation) / static_cast<double>(candidate.period);
  return hscommon::Status::Ok();
}

void DeterministicAdmission::Release(const Task& task) {
  for (auto it = admitted_.begin(); it != admitted_.end(); ++it) {
    if (it->period == task.period && it->computation == task.computation &&
        it->relative_deadline == task.relative_deadline) {
      utilization_ -=
          static_cast<double>(it->computation) / static_cast<double>(it->period);
      admitted_.erase(it);
      return;
    }
  }
}

StatisticalAdmission::StatisticalAdmission(double rate_per_second, double epsilon)
    : rate_(rate_per_second), z_(ZScore(epsilon)) {
  assert(rate_per_second > 0.0);
}

double StatisticalAdmission::ZScore(double epsilon) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  // Beasley-Springer-Moro style rational approximation of the normal quantile.
  const double p = 1.0 - epsilon;
  const double t = std::sqrt(-2.0 * std::log(1.0 - p));
  const double z =
      t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t);
  return z > 0.0 ? z : 0.0;
}

hscommon::Status StatisticalAdmission::Check(const Stream& candidate) const {
  if (candidate.mean_rate <= 0.0 || candidate.stddev_rate < 0.0) {
    return hscommon::InvalidArgument("stream needs mean_rate > 0 and stddev >= 0");
  }
  const double mean = mean_total_ + candidate.mean_rate;
  const double var = var_total_ + candidate.stddev_rate * candidate.stddev_rate;
  if (mean + z_ * std::sqrt(var) > rate_ + 1e-9) {
    return hscommon::ResourceExhausted("statistical test: overload probability too high");
  }
  return hscommon::Status::Ok();
}

hscommon::Status StatisticalAdmission::Admit(const Stream& candidate) {
  if (auto s = Check(candidate); !s.ok()) {
    return s;
  }
  mean_total_ += candidate.mean_rate;
  var_total_ += candidate.stddev_rate * candidate.stddev_rate;
  ++count_;
  return hscommon::Status::Ok();
}

void StatisticalAdmission::Release(const Stream& stream) {
  mean_total_ -= stream.mean_rate;
  var_total_ -= stream.stddev_rate * stream.stddev_rate;
  if (mean_total_ < 0.0) {
    mean_total_ = 0.0;
  }
  if (var_total_ < 0.0) {
    var_total_ = 0.0;
  }
  if (count_ > 0) {
    --count_;
  }
}

}  // namespace hqos
