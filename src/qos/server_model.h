// Fluctuation Constrained (FC) and Exponentially Bounded Fluctuation (EBF) server models
// (Lee '95, used by the paper's throughput/delay guarantees in §3.1).
//
// FC(C, delta): over any interval of a busy period the server does at least
// C * length - delta work. EBF(C, B, alpha, delta): the probability the deficit exceeds
// delta + gamma is at most B * exp(-alpha * gamma).
//
// The composition rules implement the paper's recursion (eqs. 6-7): if a class's server is
// FC/EBF, each SFQ-scheduled child class is again FC/EBF with parameters derived from its
// weight fraction and its siblings' maximum quanta — so guarantees propagate down the
// scheduling structure.

#ifndef HSCHED_SRC_QOS_SERVER_MODEL_H_
#define HSCHED_SRC_QOS_SERVER_MODEL_H_

#include <span>

#include "src/common/types.h"
#include "src/fair/bounds.h"

namespace hqos {

using hscommon::Time;
using hscommon::Weight;
using hscommon::Work;

// A Fluctuation Constrained server. `rate` is in work per nanosecond; `delta` in work.
struct FcServer {
  double rate = 1.0;
  double delta = 0.0;

  // Minimum work guaranteed over an in-busy-period interval of `span` nanoseconds.
  double MinWork(Time span) const {
    const double w = rate * static_cast<double>(span) - delta;
    return w > 0.0 ? w : 0.0;
  }

  // Latest completion of `work` units started at the beginning of a busy period.
  Time MaxLatency(Work work) const {
    return static_cast<Time>((static_cast<double>(work) + delta) / rate);
  }
};

// An Exponentially Bounded Fluctuation server: a stochastic relaxation of FC.
// P(deficit over an interval > delta + gamma) <= bound * exp(-alpha * gamma).
struct EbfServer {
  double rate = 1.0;
  double bound = 1.0;   // B
  double alpha = 1.0;   // per unit work
  double delta = 0.0;

  // The deficit delta(p) such that the violation probability is at most p.
  double DeficitAtProbability(double p) const;

  // The FC server this EBF degenerates to at violation probability p.
  FcServer ToFcAtProbability(double p) const {
    return FcServer{rate, DeficitAtProbability(p)};
  }
};

// Composition (paper eq. 6): the SFQ child with `weights[i]` of an FC parent. `lmax[i]`
// are the children's maximum quantum lengths. The child's guaranteed rate is its weight
// fraction of the parent rate; its burstiness inflates by the parent's normalized deficit
// plus one maximum quantum of every sibling.
FcServer ComposeFcChild(const FcServer& parent, std::span<const Weight> weights,
                        std::span<const Work> lmax, size_t child);

// Composition (paper eq. 7): same shape for an EBF parent; the exponential decay rate
// scales with the child's rate fraction.
EbfServer ComposeEbfChild(const EbfServer& parent, std::span<const Weight> weights,
                          std::span<const Work> lmax, size_t child);

// FC parameters of a CPU whose interrupts arrive periodically every `interval` and cost
// `service` each: rate = 1 - service/interval, delta = service (work units = ns at unit
// capacity). This is how the simulator's interrupt sources map onto the model.
FcServer FcFromPeriodicInterrupts(Time interval, Work service);

// Fits an EBF tail to observed service deficits (positive = behind `rate`): estimates
// alpha as the least-squares slope of ln P(deficit > gamma) over a gamma grid, with
// bound = 1. Returns an EbfServer with the given rate and delta = 0. Requires enough
// samples with positive deficits; alpha <= 0 signals an unusable fit.
EbfServer FitEbfTail(std::span<const double> deficits, double rate, double gamma_step,
                     int gamma_points);

}  // namespace hqos

#endif  // HSCHED_SRC_QOS_SERVER_MODEL_H_
