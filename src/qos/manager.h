// The QoS manager (paper §4, Figure 4): sits between applications and the scheduling
// structure. It builds the canonical three-class partition of Figure 2 (hard real-time /
// soft real-time / best-effort), applies class-dependent admission control, places
// admitted work into the right leaf, and re-partitions bandwidth dynamically.

#ifndef HSCHED_SRC_QOS_MANAGER_H_
#define HSCHED_SRC_QOS_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/qos/admission.h"
#include "src/sim/system.h"

namespace hqos {

using hsfq::NodeId;
using hsfq::ThreadId;

class QosManager {
 public:
  struct Config {
    // Initial class weights (Figure 2 uses 1 : 3 : 6).
    hscommon::Weight hard_rt_weight = 1;
    hscommon::Weight soft_rt_weight = 3;
    hscommon::Weight best_effort_weight = 6;
    // The physical CPU model, for composing per-class guarantees.
    FcServer cpu = FcServer{1.0, 0.0};
    // Maximum quantum used in the FC composition (the dispatcher's slice length).
    hscommon::Work max_quantum = 20 * hscommon::kMillisecond;
    // Acceptable overload probability for the soft real-time class.
    double overload_epsilon = 0.05;
  };

  // Builds /hard-rt (EDF leaf), /soft-rt (SFQ leaf) and /best-effort (interior) on the
  // system's scheduling structure.
  QosManager(hsim::System& system, const Config& config);

  NodeId hard_rt_node() const { return hard_rt_; }
  NodeId soft_rt_node() const { return soft_rt_; }
  NodeId best_effort_node() const { return best_effort_; }

  // The FC server guaranteed to a class under the current weights (paper eq. 6).
  FcServer ClassServer(NodeId class_node) const;

  // Hard real-time request: deterministic admission, then an EDF-scheduled periodic
  // thread. Fails with RESOURCE_EXHAUSTED when the task set would not be schedulable.
  hscommon::StatusOr<ThreadId> SubmitHardRt(const std::string& name, hscommon::Time period,
                                            hscommon::Work computation,
                                            std::unique_ptr<hsim::Workload> workload);

  // Soft real-time request (e.g. a VBR decoder): statistical admission on declared mean
  // and standard deviation of demand (work per second), then an SFQ-scheduled thread.
  hscommon::StatusOr<ThreadId> SubmitSoftRt(const std::string& name, hscommon::Weight weight,
                                            double mean_rate, double stddev_rate,
                                            std::unique_ptr<hsim::Workload> workload);

  // Best-effort request: never denied. Creates /best-effort/<user> (an SFQ leaf) on
  // demand; threads of one user share that leaf.
  hscommon::StatusOr<ThreadId> SubmitBestEffort(const std::string& name,
                                                const std::string& user,
                                                hscommon::Weight weight,
                                                std::unique_ptr<hsim::Workload> workload);

  // Dynamic re-partitioning (the paper's video-conference example): changes a class's
  // weight. Affects future admissions' capacity computations.
  hscommon::Status SetClassWeight(NodeId class_node, hscommon::Weight weight);

  // "The QoS manager may also move applications between classes" (§4): reclassifies a
  // (non-running) soft real-time thread as best-effort work of `user` — e.g. a stream
  // whose client stopped paying for guarantees. Its soft-class booking is released.
  hscommon::Status DemoteToBestEffort(ThreadId thread, const std::string& user,
                                      hscommon::Weight weight, double mean_rate,
                                      double stddev_rate);

  const DeterministicAdmission& hard_admission() const { return *hard_admission_; }
  const StatisticalAdmission& soft_admission() const { return *soft_admission_; }

 private:
  void RebuildAdmission();
  double ClassFraction(NodeId class_node) const;

  hsim::System& system_;
  Config config_;
  NodeId hard_rt_ = hsfq::kInvalidNode;
  NodeId soft_rt_ = hsfq::kInvalidNode;
  NodeId best_effort_ = hsfq::kInvalidNode;
  std::unordered_map<std::string, NodeId> user_leaves_;
  std::unique_ptr<DeterministicAdmission> hard_admission_;
  std::unique_ptr<StatisticalAdmission> soft_admission_;
  // Booked work, replayed into fresh admission state after a re-partition.
  std::vector<DeterministicAdmission::Task> booked_tasks_;
  std::vector<StatisticalAdmission::Stream> booked_streams_;
};

}  // namespace hqos

#endif  // HSCHED_SRC_QOS_MANAGER_H_
