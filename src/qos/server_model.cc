#include "src/qos/server_model.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace hqos {

double EbfServer::DeficitAtProbability(double p) const {
  assert(p > 0.0 && p <= 1.0);
  if (p >= bound) {
    return delta;
  }
  return delta + std::log(bound / p) / alpha;
}

namespace {

double WeightFraction(std::span<const Weight> weights, size_t child) {
  double total = 0.0;
  for (Weight w : weights) {
    total += static_cast<double>(w);
  }
  assert(total > 0.0);
  return static_cast<double>(weights[child]) / total;
}

double SiblingQuantumSum(std::span<const Work> lmax, size_t child) {
  double sum = 0.0;
  for (size_t i = 0; i < lmax.size(); ++i) {
    if (i != child) {
      sum += static_cast<double>(lmax[i]);
    }
  }
  return sum;
}

}  // namespace

FcServer ComposeFcChild(const FcServer& parent, std::span<const Weight> weights,
                        std::span<const Work> lmax, size_t child) {
  assert(weights.size() == lmax.size());
  assert(child < weights.size());
  const double phi = WeightFraction(weights, child);
  const double child_rate = phi * parent.rate;
  // During any interval the child may lag its rate share by the parent's own deficit
  // (scaled to child rate) plus one maximum quantum of every sibling (SFQ serves whole
  // quanta), plus its own quantum granularity.
  const double child_delta = child_rate * (parent.delta / parent.rate +
                                           SiblingQuantumSum(lmax, child) / parent.rate) +
                             static_cast<double>(lmax[child]);
  return FcServer{child_rate, child_delta};
}

EbfServer ComposeEbfChild(const EbfServer& parent, std::span<const Weight> weights,
                          std::span<const Work> lmax, size_t child) {
  assert(weights.size() == lmax.size());
  assert(child < weights.size());
  const double phi = WeightFraction(weights, child);
  const double child_rate = phi * parent.rate;
  const double child_delta = child_rate * (parent.delta / parent.rate +
                                           SiblingQuantumSum(lmax, child) / parent.rate) +
                             static_cast<double>(lmax[child]);
  // The tail keeps the parent's prefactor; the decay rate is per unit of *child* work,
  // so it stretches by the inverse rate fraction.
  return EbfServer{child_rate, parent.bound, parent.alpha / phi, child_delta};
}

EbfServer FitEbfTail(std::span<const double> deficits, double rate, double gamma_step,
                     int gamma_points) {
  std::vector<double> gammas;
  std::vector<double> lnp;
  for (int k = 1; k <= gamma_points; ++k) {
    const double gamma = gamma_step * k;
    size_t hits = 0;
    for (double d : deficits) {
      hits += d > gamma ? 1 : 0;
    }
    const double p = static_cast<double>(hits) / static_cast<double>(deficits.size());
    if (p > 1e-4) {
      gammas.push_back(gamma);
      lnp.push_back(std::log(p));
    }
  }
  EbfServer result{rate, 1.0, 0.0, 0.0};
  if (gammas.size() < 2) {
    return result;  // alpha = 0: not enough tail mass to fit
  }
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < gammas.size(); ++i) {
    mx += gammas[i];
    my += lnp[i];
  }
  mx /= static_cast<double>(gammas.size());
  my /= static_cast<double>(gammas.size());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < gammas.size(); ++i) {
    num += (gammas[i] - mx) * (lnp[i] - my);
    den += (gammas[i] - mx) * (gammas[i] - mx);
  }
  result.alpha = -num / den;
  return result;
}

FcServer FcFromPeriodicInterrupts(Time interval, Work service) {
  assert(interval > 0 && service >= 0 && service < interval);
  const double rate =
      1.0 - static_cast<double>(service) / static_cast<double>(interval);
  return FcServer{rate, static_cast<double>(service)};
}

}  // namespace hqos
