// Admission control policies — the class-dependent procedures the paper's QoS manager
// applies (§4, Figure 4): deterministic tests for hard real-time classes, statistical
// tests for soft real-time (VBR video) classes, and no control for best effort.

#ifndef HSCHED_SRC_QOS_ADMISSION_H_
#define HSCHED_SRC_QOS_ADMISSION_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/qos/server_model.h"

namespace hqos {

// Deterministic admission for a hard real-time class served by an FC server.
// Admits a periodic task set iff (a) utilization fits the class rate and (b) each task's
// worst-case completion — its computation plus the server deficit at the class rate —
// meets its deadline.
class DeterministicAdmission {
 public:
  explicit DeterministicAdmission(const FcServer& server) : server_(server) {}

  struct Task {
    Time period = 0;
    Work computation = 0;
    Time relative_deadline = 0;  // 0 = period
  };

  // Checks whether `candidate` fits alongside the already-admitted tasks.
  hscommon::Status Check(const Task& candidate) const;

  // Checks and records the task.
  hscommon::Status Admit(const Task& candidate);

  void Release(const Task& task);

  double BookedUtilization() const { return utilization_; }

 private:
  hscommon::Status CheckSet(const std::vector<Task>& tasks) const;

  FcServer server_;
  std::vector<Task> admitted_;
  double utilization_ = 0.0;
};

// Statistical admission for a soft real-time (VBR video) class: each stream declares its
// mean demand rate and standard deviation (work per second). The class overbooks
// deliberately (the paper's motivation); the test bounds the overload probability with a
// Gaussian aggregate: admit while  mu_total + z(epsilon) * sigma_total <= class rate.
class StatisticalAdmission {
 public:
  // `rate_per_second` is the class's guaranteed bandwidth in work per second;
  // `epsilon` the acceptable overload probability.
  StatisticalAdmission(double rate_per_second, double epsilon);

  struct Stream {
    double mean_rate = 0.0;   // work per second
    double stddev_rate = 0.0; // work per second
  };

  hscommon::Status Check(const Stream& candidate) const;
  hscommon::Status Admit(const Stream& candidate);
  void Release(const Stream& stream);

  double MeanBooked() const { return mean_total_; }
  size_t AdmittedCount() const { return count_; }

  // The z-score such that P(N(0,1) > z) = epsilon (rational approximation).
  static double ZScore(double epsilon);

 private:
  double rate_;
  double z_;
  double mean_total_ = 0.0;
  double var_total_ = 0.0;
  size_t count_ = 0;
};

}  // namespace hqos

#endif  // HSCHED_SRC_QOS_ADMISSION_H_
