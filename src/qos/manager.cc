#include "src/qos/manager.h"

#include <array>
#include <cassert>

#include "src/rt/edf.h"
#include "src/sched/sfq_leaf.h"

namespace hqos {

QosManager::QosManager(hsim::System& system, const Config& config)
    : system_(system), config_(config) {
  auto& tree = system_.tree();
  auto hard = tree.MakeNode("hard-rt", hsfq::kRootNode, config_.hard_rt_weight,
                            std::make_unique<hleaf::EdfScheduler>(hleaf::EdfScheduler::Config{
                                .utilization_limit = 1.0,
                                // Admission happens here in the manager, against the FC
                                // composition; the leaf's own test stays permissive.
                                .admission_control = false,
                            }));
  auto soft = tree.MakeNode("soft-rt", hsfq::kRootNode, config_.soft_rt_weight,
                            std::make_unique<hleaf::SfqLeafScheduler>());
  auto best = tree.MakeNode("best-effort", hsfq::kRootNode, config_.best_effort_weight,
                            /*leaf_scheduler=*/nullptr);
  assert(hard.ok() && soft.ok() && best.ok());
  hard_rt_ = *hard;
  soft_rt_ = *soft;
  best_effort_ = *best;
  RebuildAdmission();
}

double QosManager::ClassFraction(NodeId class_node) const {
  const auto& tree = system_.tree();
  double total = 0.0;
  for (NodeId child : tree.ChildrenOf(hsfq::kRootNode)) {
    total += static_cast<double>(*tree.GetNodeWeight(child));
  }
  return static_cast<double>(*tree.GetNodeWeight(class_node)) / total;
}

FcServer QosManager::ClassServer(NodeId class_node) const {
  const auto& tree = system_.tree();
  const auto children = tree.ChildrenOf(hsfq::kRootNode);
  std::vector<hscommon::Weight> weights;
  std::vector<hscommon::Work> lmax;
  size_t index = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    weights.push_back(*tree.GetNodeWeight(children[i]));
    lmax.push_back(config_.max_quantum);
    if (children[i] == class_node) {
      index = i;
    }
  }
  return ComposeFcChild(config_.cpu, weights, lmax, index);
}

void QosManager::RebuildAdmission() {
  const FcServer hard_server = ClassServer(hard_rt_);
  const FcServer soft_server = ClassServer(soft_rt_);
  hard_admission_ = std::make_unique<DeterministicAdmission>(hard_server);
  soft_admission_ = std::make_unique<StatisticalAdmission>(
      soft_server.rate * static_cast<double>(hscommon::kSecond), config_.overload_epsilon);
  // Replay existing bookings against the new capacity. A shrink can leave the class
  // overcommitted; the replay keeps the booked totals honest either way.
  for (const auto& task : booked_tasks_) {
    (void)hard_admission_->Admit(task);
  }
  for (const auto& stream : booked_streams_) {
    (void)soft_admission_->Admit(stream);
  }
}

hscommon::StatusOr<ThreadId> QosManager::SubmitHardRt(
    const std::string& name, hscommon::Time period, hscommon::Work computation,
    std::unique_ptr<hsim::Workload> workload) {
  const DeterministicAdmission::Task task{
      .period = period, .computation = computation, .relative_deadline = 0};
  if (auto s = hard_admission_->Admit(task); !s.ok()) {
    return s;
  }
  hsfq::ThreadParams params;
  params.period = period;
  params.computation = computation;
  auto result =
      system_.CreateThread(name, hard_rt_, params, std::move(workload), system_.now());
  if (!result.ok()) {
    hard_admission_->Release(task);
  } else {
    booked_tasks_.push_back(task);
  }
  return result;
}

hscommon::StatusOr<ThreadId> QosManager::SubmitSoftRt(
    const std::string& name, hscommon::Weight weight, double mean_rate, double stddev_rate,
    std::unique_ptr<hsim::Workload> workload) {
  const StatisticalAdmission::Stream stream{.mean_rate = mean_rate,
                                            .stddev_rate = stddev_rate};
  if (auto s = soft_admission_->Admit(stream); !s.ok()) {
    return s;
  }
  hsfq::ThreadParams params;
  params.weight = weight;
  auto result =
      system_.CreateThread(name, soft_rt_, params, std::move(workload), system_.now());
  if (!result.ok()) {
    soft_admission_->Release(stream);
  } else {
    booked_streams_.push_back(stream);
  }
  return result;
}

hscommon::StatusOr<ThreadId> QosManager::SubmitBestEffort(
    const std::string& name, const std::string& user, hscommon::Weight weight,
    std::unique_ptr<hsim::Workload> workload) {
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    auto leaf = system_.tree().MakeNode(user, best_effort_, /*weight=*/1,
                                        std::make_unique<hleaf::SfqLeafScheduler>());
    if (!leaf.ok()) {
      return leaf.status();
    }
    it = user_leaves_.emplace(user, *leaf).first;
  }
  hsfq::ThreadParams params;
  params.weight = weight;
  return system_.CreateThread(name, it->second, params, std::move(workload), system_.now());
}

hscommon::Status QosManager::DemoteToBestEffort(ThreadId thread, const std::string& user,
                                                hscommon::Weight weight, double mean_rate,
                                                double stddev_rate) {
  auto current = system_.tree().LeafOf(thread);
  if (!current.ok()) {
    return current.status();
  }
  if (*current != soft_rt_) {
    return hscommon::FailedPrecondition("thread is not in the soft real-time class");
  }
  // Ensure the user's best-effort leaf exists.
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    auto leaf = system_.tree().MakeNode(user, best_effort_, /*weight=*/1,
                                        std::make_unique<hleaf::SfqLeafScheduler>());
    if (!leaf.ok()) {
      return leaf.status();
    }
    it = user_leaves_.emplace(user, *leaf).first;
  }
  hsfq::ThreadParams params;
  params.weight = weight;
  if (auto s = system_.tree().MoveThread(thread, it->second, params, system_.now());
      !s.ok()) {
    return s;
  }
  // Release the stream's soft-class booking.
  const StatisticalAdmission::Stream stream{.mean_rate = mean_rate,
                                            .stddev_rate = stddev_rate};
  soft_admission_->Release(stream);
  for (auto sit = booked_streams_.begin(); sit != booked_streams_.end(); ++sit) {
    if (sit->mean_rate == mean_rate && sit->stddev_rate == stddev_rate) {
      booked_streams_.erase(sit);
      break;
    }
  }
  return hscommon::Status::Ok();
}

hscommon::Status QosManager::SetClassWeight(NodeId class_node, hscommon::Weight weight) {
  if (auto s = system_.tree().SetNodeWeight(class_node, weight); !s.ok()) {
    return s;
  }
  RebuildAdmission();
  return hscommon::Status::Ok();
}

}  // namespace hqos
