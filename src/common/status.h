// Error handling for fallible public APIs.
//
// The libraries do not throw across their boundaries (DESIGN.md §5); fallible operations
// return Status or StatusOr<T>. This is a deliberately small subset of the absl interface
// so downstream users find it familiar.

#ifndef HSCHED_SRC_COMMON_STATUS_H_
#define HSCHED_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace hscommon {

// Error taxonomy for the scheduling APIs. Mirrors the errno-style results the paper's
// system calls (hsfq_mknod & co.) would return.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed name, zero weight, bad flag
  kNotFound,          // no node with that name/id
  kAlreadyExists,     // duplicate child name
  kFailedPrecondition,// e.g. removing a node that still has children or threads
  kResourceExhausted, // admission control rejected the request
  kInternal,          // invariant violation (a bug)
};

// Human-readable name of a StatusCode ("kOk" -> "OK", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result with an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

// A value or an error. Accessing value() on an error aborts (programming error).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "StatusOr must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_STATUS_H_
