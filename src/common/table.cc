#include "src/common/table.h"

#include <algorithm>
#include <cassert>

namespace hscommon {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out.append(widths[c] - row[c].size(), ' ');
      out += row[c];
      out += ' ';
      if (c + 1 < row.size()) {
        out += '|';
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  for (size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c] + 2, '-');
    if (c + 1 < widths.size()) {
      out += '+';
    }
  }
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

bool TextTable::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fputs(row[c].c_str(), f);
      std::fputc(c + 1 < row.size() ? ',' : '\n', f);
    }
  };
  write_row(header_);
  for (const auto& row : rows_) {
    write_row(row);
  }
  std::fclose(f);
  return true;
}

}  // namespace hscommon
