// Indexed d-ary min-heap — the allocation-free ready-queue structure behind every
// scheduler's dispatch path.
//
// The fair-queuing and real-time schedulers all need the same four operations on their
// ready sets: insert with a sort key, peek/pop the minimum, erase an arbitrary member,
// and re-key a member in place (priority inheritance, replenishment). A red-black tree
// (std::set) gives them all in O(log n) but pays a heap allocation and three pointer
// chases per node; a d-ary heap over a flat vector gives the same bounds with zero
// steady-state allocations and one contiguous array to walk. Arity 4 keeps the tree
// shallow (log4 n levels) while each node's children share a cache line.
//
// Ordering is (key, id) lexicographic — exactly the order of a std::set<std::pair<Key,
// Id>> — so migrating a scheduler from the set to this heap cannot change its dispatch
// sequence: the minimum element is unique and identical under both structures.
//
// The erase/re-key operations need to find a member's slot in O(1), so the heap keeps a
// position index keyed by the member id. Two index policies are provided:
//
//   * DenseHeapIndex (the default): a flat vector indexed by the id itself. Right for
//     dense, recycled ids such as hfair::FlowId from a FlowTable.
//   * ExternalHeapIndex: delegates to a caller functor returning a uint32_t& that lives
//     inside the caller's own per-entity state. Right for sparse 64-bit ids such as
//     hsfq::ThreadId, where a dense vector could not be bounded.
//
// Neither policy allocates per operation; the only allocations ever performed are
// amortized vector growth, which Reserve() can eliminate entirely.

#ifndef HSCHED_SRC_COMMON_DARY_HEAP_H_
#define HSCHED_SRC_COMMON_DARY_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hscommon {

// "Not in the heap" sentinel used by every position index.
inline constexpr uint32_t kHeapNpos = UINT32_MAX;

// Position index over dense integer ids: a flat vector indexed by the id.
template <typename Id>
class DenseHeapIndex {
 public:
  uint32_t Get(Id id) const {
    const size_t i = static_cast<size_t>(id);
    return i < pos_.size() ? pos_[i] : kHeapNpos;
  }
  void Set(Id id, uint32_t pos) {
    const size_t i = static_cast<size_t>(id);
    if (i >= pos_.size()) {
      pos_.resize(i + 1, kHeapNpos);
    }
    pos_[i] = pos;
  }
  void Reserve(size_t n) { pos_.reserve(n); }
  size_t MemoryBytes() const { return pos_.capacity() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> pos_;
};

// Position index that stores each member's slot in caller-owned state. `PosOf` is a
// functor mapping an id to a uint32_t& (e.g. a field of the scheduler's per-thread
// struct); it must stay valid for every id currently in the heap.
template <typename Id, typename PosOf>
class ExternalHeapIndex {
 public:
  ExternalHeapIndex() = default;
  explicit ExternalHeapIndex(PosOf pos_of) : pos_of_(std::move(pos_of)) {}

  uint32_t Get(Id id) const { return pos_of_(id); }
  void Set(Id id, uint32_t pos) { pos_of_(id) = pos; }
  void Reserve(size_t /*n*/) {}
  size_t MemoryBytes() const { return 0; }  // positions live in caller-owned state

 private:
  PosOf pos_of_;
};

template <typename Key, typename Id, typename Index = DenseHeapIndex<Id>,
          unsigned kArity = 4>
class DaryHeap {
  static_assert(kArity >= 2, "a heap needs at least two children per node");

 public:
  struct Entry {
    Key key;
    Id id;
  };

  DaryHeap() = default;
  explicit DaryHeap(Index index) : index_(std::move(index)) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Pre-sizes the entry array (and a dense index) for n members.
  void Reserve(size_t n) {
    heap_.reserve(n);
    index_.Reserve(n);
  }

  // Minimum (key, id) member. Must not be called on an empty heap.
  const Key& TopKey() const {
    assert(!heap_.empty());
    return heap_.front().key;
  }
  Id TopId() const {
    assert(!heap_.empty());
    return heap_.front().id;
  }

  bool Contains(Id id) const { return index_.Get(id) != kHeapNpos; }

  // Current key of a member. The id must be in the heap.
  const Key& KeyOf(Id id) const {
    assert(Contains(id));
    return heap_[index_.Get(id)].key;
  }

  // Inserts a member. The id must not already be in the heap.
  void Push(Id id, Key key) {
    assert(!Contains(id));
    heap_.push_back(Entry{std::move(key), id});
    SiftUp(heap_.size() - 1);
  }

  // Removes and returns the minimum member's id.
  Id PopMin() {
    assert(!heap_.empty());
    const Id id = heap_.front().id;
    RemoveAt(0);
    return id;
  }

  // Removes an arbitrary member. The id must be in the heap.
  void Erase(Id id) {
    const uint32_t pos = index_.Get(id);
    assert(pos != kHeapNpos);
    RemoveAt(pos);
  }

  // Re-keys a member in place (either direction). The id must be in the heap.
  void Update(Id id, Key key) {
    const uint32_t pos = index_.Get(id);
    assert(pos != kHeapNpos);
    heap_[pos].key = std::move(key);
    if (!SiftUp(pos)) {
      SiftDown(pos);
    }
  }

  void Clear() {
    for (const Entry& e : heap_) {
      index_.Set(e.id, kHeapNpos);
    }
    heap_.clear();
  }

  // Unordered view of the members, for linear scans (e.g. EEVDF's eligibility search).
  // The heap invariant guarantees nothing about element order beyond front() being the
  // minimum.
  const std::vector<Entry>& Entries() const { return heap_; }

  // Heap-owned storage in bytes (entry array capacity plus a dense index), for the
  // hierarchy's bytes/leaf accounting.
  size_t MemoryBytes() const {
    return heap_.capacity() * sizeof(Entry) + index_.MemoryBytes();
  }

 private:
  // (key, id) lexicographic strict weak order; requires only operator< on Key.
  // Evaluated with bitwise (non-short-circuit) logic on purpose: the comparison sits in
  // the sift loops where its outcome is data-dependent and unpredictable, so both key
  // comparisons are done unconditionally and combined without branches — the compiler
  // turns the whole thing into flag arithmetic instead of a mispredicting jump.
  static bool Less(const Entry& a, const Entry& b) {
    const bool key_lt = a.key < b.key;
    const bool key_eq = !(key_lt | (b.key < a.key));
    return key_lt | (key_eq & (a.id < b.id));
  }

  void Place(size_t pos, Entry&& e) {
    index_.Set(e.id, static_cast<uint32_t>(pos));
    heap_[pos] = std::move(e);
  }

  // Moves heap_[pos] toward the root until its parent is not greater. Returns true if
  // the entry moved.
  bool SiftUp(size_t pos) {
    Entry e = std::move(heap_[pos]);
    const size_t start = pos;
    while (pos > 0) {
      const size_t parent = (pos - 1) / kArity;
      if (!Less(e, heap_[parent])) {
        break;
      }
      Place(pos, std::move(heap_[parent]));
      pos = parent;
    }
    Place(pos, std::move(e));
    return pos != start;
  }

  // Moves heap_[pos] toward the leaves until no child is smaller.
  //
  // Which child wins the min-of-kArity scan is data-dependent and effectively random, so
  // the selection uses conditional moves (`best = less ? c : best`) rather than branches;
  // the only branch left per level — "does the subject sink further?" — is highly
  // predictable (a re-keyed top almost always descends to a leaf). Interior nodes take
  // the fixed-trip-count unrolled path; only the last, possibly ragged child group falls
  // back to the bounded loop.
  void SiftDown(size_t pos) {
    Entry e = std::move(heap_[pos]);
    const size_t n = heap_.size();
    while (true) {
      const size_t first_child = pos * kArity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      if (first_child + kArity <= n) {
        for (unsigned c = 1; c < kArity; ++c) {
          const size_t cand = first_child + c;
          best = Less(heap_[cand], heap_[best]) ? cand : best;
        }
      } else {
        for (size_t cand = first_child + 1; cand < n; ++cand) {
          best = Less(heap_[cand], heap_[best]) ? cand : best;
        }
      }
      if (!Less(heap_[best], e)) {
        break;
      }
      Place(pos, std::move(heap_[best]));
      pos = best;
    }
    Place(pos, std::move(e));
  }

  void RemoveAt(size_t pos) {
    index_.Set(heap_[pos].id, kHeapNpos);
    const size_t last = heap_.size() - 1;
    if (pos != last) {
      Entry moved = std::move(heap_[last]);
      heap_.pop_back();
      heap_[pos].key = std::move(moved.key);  // overwrite before Place re-indexes
      heap_[pos].id = moved.id;
      index_.Set(moved.id, static_cast<uint32_t>(pos));
      if (!SiftUp(pos)) {
        SiftDown(pos);
      }
    } else {
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  Index index_;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_DARY_HEAP_H_
