#include "src/common/virtual_time.h"

#include <cstdio>

namespace hscommon {

std::string VirtualTime::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", ToDouble());
  return buf;
}

}  // namespace hscommon
