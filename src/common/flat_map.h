// Open-addressing hash map for integral keys — the arena-era replacement for the
// node-per-entry std::unordered_map on hot admin paths.
//
// Linear probing over one contiguous power-of-two slot array, with backward-shift
// deletion (no tombstones, so lookup chains never rot under churn). A reserved key
// value marks empty slots, so the table carries no per-slot occupancy byte and a probe
// touches nothing but the packed {key, value} pairs. Steady-state Insert/Erase cycles
// at a stable population never allocate: memory is only touched when the load factor
// crosses the growth threshold, which a churn loop at constant size never does.
//
// Used by SchedulingStructure for the thread -> leaf index, where attach/detach churn
// at 10^5..10^6 threads must stay allocation-free and cache-compact.

#ifndef HSCHED_SRC_COMMON_FLAT_MAP_H_
#define HSCHED_SRC_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hscommon {

// `kEmptyKey` is the reserved slot marker: inserting it is a caller bug (asserted).
template <typename Key, typename Value, Key kEmptyKey>
class FlatMap {
  static_assert(sizeof(Key) <= 8, "FlatMap keys are hashed as 64-bit integers");

 public:
  FlatMap() = default;

  // Returns a pointer to the mapped value, or nullptr when absent.
  Value* Find(Key key) {
    if (size_ == 0) return nullptr;
    for (size_t i = Home(key);; i = Next(i)) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmptyKey) return nullptr;
    }
  }
  const Value* Find(Key key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }
  bool Contains(Key key) const { return Find(key) != nullptr; }

  // Inserts key -> value; returns false (and leaves the map unchanged) when the key is
  // already present.
  bool Insert(Key key, Value value) {
    assert(key != kEmptyKey && "the empty-slot marker cannot be a live key");
    ReserveFor(size_ + 1);
    for (size_t i = Home(key);; i = Next(i)) {
      if (slots_[i].key == key) return false;
      if (slots_[i].key == kEmptyKey) {
        slots_[i] = Slot{key, std::move(value)};
        ++size_;
        return true;
      }
    }
  }

  // Removes the key; returns false when it was absent. Backward-shift deletion keeps
  // every surviving probe chain gap-free without tombstones.
  bool Erase(Key key) {
    if (size_ == 0) return false;
    size_t i = Home(key);
    for (;; i = Next(i)) {
      if (slots_[i].key == kEmptyKey) return false;
      if (slots_[i].key == key) break;
    }
    size_t hole = i;
    for (size_t j = Next(hole);; j = Next(j)) {
      if (slots_[j].key == kEmptyKey) break;
      // Slide j back into the hole unless j already sits at or after its home
      // position within the chain segment the hole splits.
      const size_t home = Home(slots_[j].key);
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Grows the slot array so `n` live keys fit without further allocation.
  void Reserve(size_t n) { ReserveFor(n); }

  // Map-owned storage in bytes.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  // Visits every live entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    Value value{};
  };

  // SplitMix64 finalizer: full-avalanche mixing so sequential ids spread across slots.
  static size_t Mix(Key key) {
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  size_t Home(Key key) const { return Mix(key) & (slots_.size() - 1); }
  size_t Next(size_t i) const { return (i + 1) & (slots_.size() - 1); }

  void ReserveFor(size_t n) {
    // Grow at 70% load; the array starts at 16 slots.
    if (slots_.size() >= 16 && n * 10 <= slots_.size() * 7) return;
    size_t cap = slots_.empty() ? 16 : slots_.size();
    while (n * 10 > cap * 7) cap *= 2;
    if (cap == slots_.size()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != kEmptyKey) {
        for (size_t i = Home(s.key);; i = Next(i)) {
          if (slots_[i].key == kEmptyKey) {
            slots_[i] = std::move(s);
            ++size_;
            break;
          }
        }
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_FLAT_MAP_H_
