// Text-table and CSV emitters used by every bench binary.
//
// Each bench prints a human-readable table to stdout (the "paper row/series" view) and can
// optionally mirror the same rows to a CSV file for plotting.

#ifndef HSCHED_SRC_COMMON_TABLE_H_
#define HSCHED_SRC_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace hscommon {

// Accumulates rows of stringified cells and pretty-prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; the cell count must match the header.
  void AddRow(std::vector<std::string> cells);

  // Formatting helpers for cells.
  static std::string Num(double v, int precision = 3);
  static std::string Int(int64_t v);

  // Renders with a separator line under the header.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

  // Writes header + rows as RFC-4180-ish CSV (no quoting needed for our cells).
  // Returns false if the file could not be opened.
  bool WriteCsv(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_TABLE_H_
