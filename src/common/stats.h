// Streaming statistics used by the metrics library, the benches, and the tests.

#ifndef HSCHED_SRC_COMMON_STATS_H_
#define HSCHED_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace hscommon {

// Single-pass mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  // stddev / mean; 0 when the mean is 0.
  double coefficient_of_variation() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width histogram over [lo, hi); out-of-range samples land in clamped edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  // Inclusive lower edge of bucket i.
  double bucket_lo(size_t i) const;
  uint64_t total() const { return total_; }

  // Value at quantile q in [0,1], linearly interpolated within the bucket.
  double Quantile(double q) const;

  // Multi-line ASCII rendering, for bench output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 is perfectly fair; 1/n is the
// worst case (one party gets everything). Empty or all-zero input yields 0.
double JainFairnessIndex(std::span<const double> shares);

// Max relative deviation from the mean: max_i |x_i - mean| / mean. 0 when mean == 0.
double MaxRelativeDeviation(std::span<const double> values);

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_STATS_H_
