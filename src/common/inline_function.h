// Small-buffer-optimized move-only callable holder.
//
// std::function heap-allocates any callable larger than its tiny internal buffer
// (16 bytes in libstdc++), which puts an allocation on the simulator's event-scheduling
// hot path for perfectly ordinary lambdas. InlineFunction stores callables up to
// `Capacity` bytes inline — the event queue sizes it so every callback the simulator
// schedules fits — and falls back to the heap only for oversized or throwing-move
// callables, so correctness never depends on the capacity choice.
//
// Move-only by design: event callbacks are consumed exactly once and captured state
// (unique_ptrs, etc.) should not need to be copyable.

#ifndef HSCHED_SRC_COMMON_INLINE_FUNCTION_H_
#define HSCHED_SRC_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace hscommon {

template <typename Signature, size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &kHeapVtable<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(std::move(other)); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  // Invokes the held callable; undefined if empty (asserted via the vtable deref).
  R operator()(Args... args) {
    return vtable_->invoke(buf_, std::forward<Args>(args)...);
  }

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct Vtable {
    R (*invoke)(void* storage, Args&&... args);
    // Move-constructs `dst` from `src` and destroys `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Vtable kInlineVtable = {
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* storage) { static_cast<Fn*>(storage)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Vtable kHeapVtable = {
      [](void* storage, Args&&... args) -> R {
        return (**static_cast<Fn**>(storage))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* storage) { delete *static_cast<Fn**>(storage); },
  };

  void MoveFrom(InlineFunction&& other) {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.buf_, buf_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity < sizeof(void*)
                                                   ? sizeof(void*)
                                                   : Capacity];
  const Vtable* vtable_ = nullptr;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_INLINE_FUNCTION_H_
