#include "src/common/prng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hscommon {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard the biased tail of the 2^64 range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Prng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Prng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Prng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Prng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Prng::Lognormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Prng::Bernoulli(double p) { return UniformDouble() < p; }

Prng Prng::Fork() { return Prng(Next()); }

}  // namespace hscommon
