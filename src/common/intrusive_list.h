// A minimal intrusive doubly-linked list.
//
// Run queues (FIFO, round-robin, the TS dispatch queues) hold threads that are owned
// elsewhere; an intrusive list gives O(1) unlink on state transitions without allocation,
// which is the idiom kernel run queues use. A node may be on at most one list at a time.

#ifndef HSCHED_SRC_COMMON_INTRUSIVE_LIST_H_
#define HSCHED_SRC_COMMON_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace hscommon {

// Embed one of these in any object that needs list membership.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return next != nullptr; }
};

// Intrusive list of T. `NodeMember` selects which embedded ListNode to use, so one object
// can belong to several (distinct) lists.
template <typename T, ListNode T::* NodeMember = &T::list_node>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  // Lists do not own their elements; destruction unlinks whatever is still on the list,
  // so every element must outlive the list (declare elements before the list, or Clear()
  // manually before the elements die).
  ~IntrusiveList() { Clear(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&head_, item); }
  void PushFront(T* item) { InsertBefore(head_.next, item); }

  // Inserts `item` immediately before `pos` (which must be on this list).
  void InsertBefore(T* pos, T* item) { InsertBefore(&(pos->*NodeMember), item); }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() const { return empty() ? nullptr : FromNode(head_.prev); }

  // Unlinks and returns the front element, or nullptr when empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* item = Front();
    Remove(item);
    return item;
  }

  // Unlinks `item`, which must currently be on this list.
  void Remove(T* item) {
    ListNode* n = &(item->*NodeMember);
    assert(n->linked());
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --size_;
  }

  // Unlinks every element (without destroying them).
  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

  // The element after `item`, or nullptr at the end.
  T* Next(T* item) const {
    ListNode* n = (item->*NodeMember).next;
    return n == &head_ ? nullptr : FromNode(n);
  }

  // Minimal forward iteration support (enough for range-for).
  class Iterator {
   public:
    Iterator(const IntrusiveList* list, ListNode* node) : list_(list), node_(node) {}
    T* operator*() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    const IntrusiveList* list_;
    ListNode* node_;
  };

  Iterator begin() const { return Iterator(this, head_.next); }
  Iterator end() const { return Iterator(this, const_cast<ListNode*>(&head_)); }

 private:
  // Byte offset of the embedded node within T, measured from a live object at insertion
  // time (avoids the undefined null-pointer-deref offsetof idiom).
  static ptrdiff_t NodeOffset(T* item) {
    return reinterpret_cast<char*>(&(item->*NodeMember)) - reinterpret_cast<char*>(item);
  }

  static T* FromNode(ListNode* n) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - node_offset_);
  }

  void InsertBefore(ListNode* pos, T* item) {
    node_offset_ = NodeOffset(item);
    ListNode* n = &(item->*NodeMember);
    assert(!n->linked() && "item is already on a list");
    n->prev = pos->prev;
    n->next = pos;
    pos->prev->next = n;
    pos->prev = n;
    ++size_;
  }

  ListNode head_;
  size_t size_ = 0;
  // The offset is a property of (T, NodeMember), shared by all lists of this type.
  static inline ptrdiff_t node_offset_ = 0;
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_INTRUSIVE_LIST_H_
