#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace hscommon {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const {
  if (count_ == 0 || mean_ == 0.0) {
    return 0.0;
  }
  return stddev() / mean_;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  auto idx = static_cast<int64_t>((x - lo_) / width_);
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        peak == 0 ? 0 : static_cast<size_t>(counts_[i] * max_width / peak);
    std::snprintf(line, sizeof(line), "[%10.3f) %8llu |", bucket_lo(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double JainFairnessIndex(std::span<const double> shares) {
  if (shares.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : shares) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) {
    return 0.0;
  }
  return (sum * sum) / (static_cast<double>(shares.size()) * sumsq);
}

double MaxRelativeDeviation(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (double x : values) {
    mean += x;
  }
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) {
    return 0.0;
  }
  double worst = 0.0;
  for (double x : values) {
    worst = std::max(worst, std::fabs(x - mean) / mean);
  }
  return worst;
}

}  // namespace hscommon
