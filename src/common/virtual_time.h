// 96.32 fixed-point virtual time.
//
// Fair-queuing tags are monotone sums of `work / weight`. Floating point drifts over long
// runs and breaks the exact tag-inequality assertions in the property tests, so tags are
// kept as an unsigned 128-bit integer with 32 fractional bits. The integer part therefore
// has 96 bits of headroom: with work in nanoseconds and weight >= 1, a simulation would
// need ~2.5e12 years of CPU service to overflow.

#ifndef HSCHED_SRC_COMMON_VIRTUAL_TIME_H_
#define HSCHED_SRC_COMMON_VIRTUAL_TIME_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace hscommon {

// A point on a fair-queuing virtual time axis. Ordered, additive, and exactly
// representable: (a + b) - b == a for all in-range values.
class VirtualTime {
 public:
  constexpr VirtualTime() = default;

  // The zero of the virtual axis.
  static constexpr VirtualTime Zero() { return VirtualTime(0); }

  // A value greater than any tag a simulation can produce; used as an "idle" sentinel.
  static constexpr VirtualTime Infinity() { return VirtualTime(~static_cast<unsigned __int128>(0)); }

  // The virtual-time increment for `work` units of service at weight `weight`,
  // i.e. work / weight in 96.32 fixed point, truncated. `work` must be >= 0 and
  // `weight` must be >= 1.
  static constexpr VirtualTime FromService(Work work, Weight weight) {
    // Dividing a 128-bit value costs a library call (__udivti3, dozens of cycles) and
    // this sits on the tag-stamping path of every completion. Work below 2^32 ns (~4.3
    // simulated seconds of service in one slice — every realistic quantum) keeps
    // work << 32 within 64 bits, where the division is a single machine instruction.
    const auto w = static_cast<uint64_t>(work);
    if (w < (uint64_t{1} << (64 - kFractionBits))) {
      return VirtualTime((w << kFractionBits) / weight);
    }
    return VirtualTime((static_cast<unsigned __int128>(work) << kFractionBits) / weight);
  }

  // A virtual-time span of exactly `units` integer units (for tests and bounds).
  static constexpr VirtualTime FromUnits(uint64_t units) {
    return VirtualTime(static_cast<unsigned __int128>(units) << kFractionBits);
  }

  constexpr VirtualTime operator+(VirtualTime other) const {
    return VirtualTime(raw_ + other.raw_);
  }
  constexpr VirtualTime operator-(VirtualTime other) const {
    return VirtualTime(raw_ - other.raw_);
  }
  constexpr VirtualTime& operator+=(VirtualTime other) {
    raw_ += other.raw_;
    return *this;
  }

  constexpr bool operator==(const VirtualTime&) const = default;
  constexpr bool operator<(VirtualTime other) const { return raw_ < other.raw_; }
  constexpr bool operator<=(VirtualTime other) const { return raw_ <= other.raw_; }
  constexpr bool operator>(VirtualTime other) const { return raw_ > other.raw_; }
  constexpr bool operator>=(VirtualTime other) const { return raw_ >= other.raw_; }

  // Lossy conversion for reporting. Full precision is only available via raw().
  constexpr double ToDouble() const {
    return static_cast<double>(raw_) / static_cast<double>(static_cast<unsigned __int128>(1)
                                                           << kFractionBits);
  }

  // The amount of service a flow of weight `weight` receives while virtual time advances
  // by this span: work = span * weight (truncated). Inverse of FromService.
  constexpr Work ScaleToWork(Weight weight) const {
    return static_cast<Work>((raw_ * weight) >> kFractionBits);
  }

  // The integer part of the tag (whole units, fraction truncated) — fits the tracer's
  // 64-bit payload for any realistic run; monotone whenever the tag is.
  constexpr uint64_t IntegerUnits() const {
    return static_cast<uint64_t>(raw_ >> kFractionBits);
  }

  // Raw fixed-point bits (for hashing / debugging).
  constexpr unsigned __int128 raw() const { return raw_; }

  std::string ToString() const;

 private:
  static constexpr int kFractionBits = 32;

  explicit constexpr VirtualTime(unsigned __int128 raw) : raw_(raw) {}

  unsigned __int128 raw_ = 0;
};

// max(a, b), the operation SFQ applies when stamping a start tag.
constexpr VirtualTime Max(VirtualTime a, VirtualTime b) { return a < b ? b : a; }
constexpr VirtualTime Min(VirtualTime a, VirtualTime b) { return a < b ? a : b; }

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_VIRTUAL_TIME_H_
