// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (interrupt arrivals, scene changes, lottery
// draws, workload jitter) draws from a Prng seeded explicitly, so every experiment is
// reproducible bit-for-bit. The core generator is xoshiro256** (Blackman & Vigna), which
// is fast, tiny, and passes BigCrush.

#ifndef HSCHED_SRC_COMMON_PRNG_H_
#define HSCHED_SRC_COMMON_PRNG_H_

#include <cstdint>

namespace hscommon {

// xoshiro256** with SplitMix64 seeding. Not cryptographic.
class Prng {
 public:
  // Seeds the state by running SplitMix64 from `seed`. Any seed (including 0) is valid.
  explicit Prng(uint64_t seed);

  // Next raw 64 random bits.
  uint64_t Next();

  // Uniform in [0, bound). `bound` must be > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  // Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (no cached spare: stays stateless per call pair).
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)).
  double Lognormal(double mu, double sigma);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // A derived generator with an independent stream (for giving sub-components their
  // own deterministic randomness).
  Prng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_PRNG_H_
