// Core scalar types shared by every hsched library.
//
// Conventions (see DESIGN.md §5):
//  * Simulated wall-clock time is `Time`, a signed 64-bit count of nanoseconds.
//  * CPU work ("service") is `Work`, a signed 64-bit count of nanoseconds of CPU
//    service at unit capacity. On an uncontended, interrupt-free CPU a thread
//    attains one nanosecond of Work per nanosecond of Time.
//  * Scheduling weights are strictly positive 64-bit integers.

#ifndef HSCHED_SRC_COMMON_TYPES_H_
#define HSCHED_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hscommon {

// Simulated wall-clock time in nanoseconds since simulation start.
using Time = int64_t;

// CPU service in nanoseconds at unit capacity.
using Work = int64_t;

// Scheduling weight. Must be >= 1 wherever the schedulers accept it.
using Weight = uint64_t;

// Convenient duration literals (all expressed in nanoseconds).
inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

// Converts nanoseconds to (fractional) seconds for reporting.
constexpr double ToSeconds(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

// Converts nanoseconds to (fractional) milliseconds for reporting.
constexpr double ToMillis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace hscommon

#endif  // HSCHED_SRC_COMMON_TYPES_H_
