// The record/replay determinism oracle.
//
// The simulator is deterministic by construction (seeded PRNGs, a stable event queue,
// no wall-clock or address-dependent decisions) — but "by construction" erodes under
// refactoring. The oracle turns the property into a checkable invariant: run a scenario
// twice from scratch, trace both runs, and require the two event streams to be
// byte-identical. Any nondeterminism — iteration over an unordered container on the
// dispatch path, an unseeded random draw, uninitialized padding — shows up as a first
// divergent event with a precise index and a readable dump of both sides.

#ifndef HSCHED_SRC_TRACE_REPLAY_H_
#define HSCHED_SRC_TRACE_REPLAY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace htrace {

// Renders one event as a single line, e.g.
//   "[12000000] Update node=3 thread=7 b=4000000 flags=1".
std::string EventToString(const TraceEvent& event);

struct TraceDiff {
  bool identical = false;
  // First divergent event index (or the shorter length on a pure length mismatch).
  size_t first_divergence = 0;
  // Human-readable description of the divergence; empty when identical.
  std::string description;
};

// Byte-compares two event streams (memcmp per record).
TraceDiff DiffTraces(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b);

// Convenience overload comparing the retained ring contents of two tracers.
TraceDiff DiffTraces(const Tracer& a, const Tracer& b);

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_REPLAY_H_
