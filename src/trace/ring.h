// Preallocated ring buffer of TraceEvents.
//
// All storage is acquired once, at construction; Push never allocates, so the tracer
// can sit inside the dispatch hot path without violating the repo's zero-allocation
// steady-state invariant (tests/perf/alloc_free_test.cc). When full, Push overwrites
// the oldest event and counts it in dropped() — a bounded trace keeps the most recent
// window, like a kernel trace ring.

#ifndef HSCHED_SRC_TRACE_RING_H_
#define HSCHED_SRC_TRACE_RING_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/event.h"

namespace htrace {

class EventRing {
 public:
  explicit EventRing(size_t capacity) : storage_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return storage_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Events ever pushed, including overwritten ones.
  uint64_t total() const { return total_; }
  // Events lost to wraparound (total() - size()).
  uint64_t dropped() const { return dropped_; }

  void Push(const TraceEvent& event) {
    ++total_;
    if (size_ < storage_.size()) {
      storage_[Wrap(start_ + size_)] = event;
      ++size_;
      return;
    }
    storage_[start_] = event;  // overwrite the oldest
    start_ = Wrap(start_ + 1);
    ++dropped_;
  }

  // i-th oldest retained event (0 = oldest).
  const TraceEvent& At(size_t i) const {
    assert(i < size_);
    return storage_[Wrap(start_ + i)];
  }

  void Clear() {
    start_ = 0;
    size_ = 0;
    total_ = 0;
    dropped_ = 0;
  }

  // Copies the retained events, oldest first, into a flat vector (not hot-path).
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(At(i));
    }
    return out;
  }

 private:
  size_t Wrap(size_t i) const { return i < storage_.size() ? i : i - storage_.size(); }

  std::vector<TraceEvent> storage_;
  size_t start_ = 0;
  size_t size_ = 0;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_RING_H_
