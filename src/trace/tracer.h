// The scheduling tracer: typed Record* helpers over an EventRing.
//
// One Tracer is attached to a SchedulingStructure (and, through hsim::System::SetTracer,
// to the simulator) with a raw pointer; a null pointer means tracing is compiled down to
// a single predictable dead branch at each tap site (`if (tracer_ != nullptr)`), and an
// attached-but-disabled tracer costs one more branch. All Record helpers are inline and
// allocation-free: they build a 48-byte POD on the stack and copy it into the
// preallocated ring.

#ifndef HSCHED_SRC_TRACE_TRACER_H_
#define HSCHED_SRC_TRACE_TRACER_H_

#include <cstdint>
#include <string_view>

#include "src/common/types.h"
#include "src/trace/event.h"
#include "src/trace/ring.h"

namespace htrace {

class Tracer {
 public:
  // Default capacity (1M events, 48 MiB) comfortably holds minutes of simulated
  // dispatching; pass a smaller ring to keep only the most recent window.
  static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  explicit Tracer(size_t capacity = kDefaultCapacity) : ring_(capacity) {
    ring_.Push(MakeEvent(EventType::kTraceStart, 0, 0,
                         static_cast<uint64_t>(ring_.capacity()), 0, 0, "hsched"));
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  const EventRing& ring() const { return ring_; }

  // Drops every recorded event (the kTraceStart marker is re-emitted), e.g. when the
  // shell restarts tracing.
  void Clear() {
    ring_.Clear();
    ring_.Push(MakeEvent(EventType::kTraceStart, 0, 0,
                         static_cast<uint64_t>(ring_.capacity()), 0, 0, "hsched"));
  }

  // --- Structure management taps ---

  void RecordMakeNode(hscommon::Time now, uint32_t node, uint32_t parent,
                      uint64_t weight, bool is_leaf, std::string_view name) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kMakeNode, now, node, parent,
                         static_cast<int64_t>(weight), is_leaf ? 1 : 0, name));
  }
  void RecordRemoveNode(hscommon::Time now, uint32_t node) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kRemoveNode, now, node, 0, 0));
  }
  void RecordSetWeight(hscommon::Time now, uint32_t node, uint64_t weight) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kSetWeight, now, node, weight, 0));
  }
  void RecordAttachThread(hscommon::Time now, uint32_t leaf, uint64_t thread,
                          uint64_t weight) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kAttachThread, now, leaf, thread,
                         static_cast<int64_t>(weight)));
  }
  void RecordDetachThread(hscommon::Time now, uint32_t leaf, uint64_t thread) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kDetachThread, now, leaf, thread, 0));
  }
  void RecordMoveThread(hscommon::Time now, uint32_t to_leaf, uint64_t thread) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kMoveThread, now, to_leaf, thread, 0));
  }

  // --- Kernel-hook taps (the hot path) ---

  void RecordSetRun(hscommon::Time now, uint32_t leaf, uint64_t thread) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kSetRun, now, leaf, thread, 0));
  }
  void RecordSleep(hscommon::Time now, uint32_t leaf, uint64_t thread) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kSleep, now, leaf, thread, 0));
  }
  // `start_tag_units` is the integer part of the picked child's SFQ start tag — the
  // interior node's virtual time, which must never regress (src/fault checks it).
  void RecordPickChild(hscommon::Time now, uint32_t interior, uint32_t child,
                       int64_t start_tag_units) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kPickChild, now, interior, child, start_tag_units));
  }
  void RecordSchedule(hscommon::Time now, uint32_t leaf, uint64_t thread) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kSchedule, now, leaf, thread, 0));
  }
  void RecordUpdate(hscommon::Time now, uint32_t leaf, uint64_t thread,
                    hscommon::Work used, bool still_runnable) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kUpdate, now, leaf, thread, used,
                         still_runnable ? 1 : 0));
  }

  // --- Simulator taps ---

  void RecordThreadName(hscommon::Time now, uint32_t leaf, uint64_t thread,
                        std::string_view name) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kThreadName, now, leaf, thread, 0, 0, name));
  }
  void RecordDispatch(hscommon::Time now, uint64_t thread, hscommon::Work quantum) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kDispatch, now, 0, thread, quantum));
  }
  void RecordInterrupt(hscommon::Time now, hscommon::Work stolen) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kInterrupt, now, 0, 0, stolen));
  }
  void RecordIdle(hscommon::Time now, hscommon::Time until) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kIdle, now, 0, static_cast<uint64_t>(until),
                         until - now));
  }

  // --- Fault-injection taps (src/fault) ---

  // `kind` is a short tag like "drop-wake"; `magnitude` is the fault's size in
  // nanoseconds (delay, stolen time, extra overhead) or 0 when not applicable.
  void RecordFault(hscommon::Time now, std::string_view kind, uint64_t thread,
                   int64_t magnitude) {
    if (!enabled_) return;
    ring_.Push(MakeEvent(EventType::kFault, now, 0, thread, magnitude, 0, kind));
  }

 private:
  EventRing ring_;
  bool enabled_ = true;
};

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_TRACER_H_
