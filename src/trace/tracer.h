// The scheduling tracer: typed Record* helpers over per-CPU EventRings.
//
// One Tracer is attached to a SchedulingStructure (and, through hsim::System::SetTracer,
// to the simulator) with a raw pointer; a null pointer means tracing is compiled down to
// a single predictable dead branch at each tap site (`if (tracer_ != nullptr)`), and an
// attached-but-disabled tracer costs one more branch. All Record helpers are inline and
// allocation-free: they build a 48-byte POD on the stack and copy it into the
// preallocated ring.
//
// An SMP simulator owns one ring per CPU (no cross-CPU ordering cost at record time);
// MergedSnapshot() k-way-merges the rings into one stream ordered by (time,
// slice-close-before-open, cpu ring, ring-local sequence) — the deterministic order the
// replay oracle and the exporters consume. A single-CPU tracer (the default) has exactly one ring and behaves, byte for
// byte, like it always has: every event carries cpu 0 and the kTraceStart marker keeps
// b = 0.

#ifndef HSCHED_SRC_TRACE_TRACER_H_
#define HSCHED_SRC_TRACE_TRACER_H_

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/trace/event.h"
#include "src/trace/ring.h"

namespace htrace {

class Tracer {
 public:
  // Default capacity (1M events, 48 MiB) comfortably holds minutes of simulated
  // dispatching; pass a smaller ring to keep only the most recent window. The capacity
  // is per ring: an SMP tracer preallocates `ncpus` rings of `capacity` events each.
  static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  explicit Tracer(size_t capacity = kDefaultCapacity, int ncpus = 1) {
    assert(ncpus >= 1);
    rings_.reserve(static_cast<size_t>(ncpus));
    for (int i = 0; i < ncpus; ++i) {
      rings_.emplace_back(capacity);
    }
    PushStartMarker();
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  int ncpus() const { return static_cast<int>(rings_.size()); }

  // CPU 0's ring — the only ring of a single-CPU tracer, and the ring that carries the
  // kTraceStart marker and all global (not-on-a-CPU) events of an SMP run.
  const EventRing& ring() const { return rings_[0]; }
  const EventRing& ring(int cpu) const { return rings_[static_cast<size_t>(cpu)]; }

  // Events lost to wraparound across all rings.
  uint64_t TotalDropped() const {
    uint64_t dropped = 0;
    for (const EventRing& r : rings_) {
      dropped += r.dropped();
    }
    return dropped;
  }

  // The per-CPU rings merged into one stream: ordered by time, ties broken by ring
  // index then ring-local sequence. Each ring is individually time-ordered (the
  // simulated clock never goes backwards), so this is a stable k-way merge — the
  // deterministic order consumed by WriteTraceFile, DiffTraces, and the exporters.
  // For a single-CPU tracer it is exactly ring().Snapshot().
  std::vector<TraceEvent> MergedSnapshot() const {
    if (rings_.size() == 1) {
      return rings_[0].Snapshot();
    }
    std::vector<TraceEvent> out;
    size_t total = 0;
    std::vector<size_t> pos(rings_.size(), 0);
    for (const EventRing& r : rings_) {
      total += r.size();
    }
    out.reserve(total);
    // At equal timestamps the simulator's causal order is: close every due slice,
    // then dispatch. Rank slice-closing events first so a cpu's kUpdate at time T
    // merges ahead of another cpu's kSchedule at the same T — otherwise the merged
    // stream would show the freed thread "double dispatched". Ties beyond that keep
    // the lowest ring index. In-ring order is preserved by construction (a k-way
    // merge only reorders across rings).
    const auto rank = [](const TraceEvent& e) {
      return e.type == EventType::kUpdate ? 0 : 1;
    };
    while (out.size() < total) {
      size_t best = rings_.size();
      for (size_t r = 0; r < rings_.size(); ++r) {
        if (pos[r] >= rings_[r].size()) {
          continue;
        }
        if (best == rings_.size()) {
          best = r;
          continue;
        }
        const TraceEvent& cand = rings_[r].At(pos[r]);
        const TraceEvent& cur = rings_[best].At(pos[best]);
        if (cand.time < cur.time ||
            (cand.time == cur.time && rank(cand) < rank(cur))) {
          best = r;  // strict ordering keeps the lowest ring index on full ties
        }
      }
      out.push_back(rings_[best].At(pos[best]));
      ++pos[best];
    }
    return out;
  }

  // Drops every recorded event (the kTraceStart marker is re-emitted), e.g. when the
  // shell restarts tracing.
  void Clear() {
    for (EventRing& r : rings_) {
      r.Clear();
    }
    PushStartMarker();
  }

  // --- Structure management taps ---

  void RecordMakeNode(hscommon::Time now, uint32_t node, uint32_t parent,
                      uint64_t weight, bool is_leaf, std::string_view name,
                      uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kMakeNode, now, node, parent,
                        static_cast<int64_t>(weight), is_leaf ? 1 : 0, name,
                        static_cast<uint16_t>(cpu)));
  }
  void RecordRemoveNode(hscommon::Time now, uint32_t node, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kRemoveNode, now, node, 0, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordSetWeight(hscommon::Time now, uint32_t node, uint64_t weight,
                       uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kSetWeight, now, node, weight, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordAttachThread(hscommon::Time now, uint32_t leaf, uint64_t thread,
                          uint64_t weight, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kAttachThread, now, leaf, thread,
                        static_cast<int64_t>(weight), 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordDetachThread(hscommon::Time now, uint32_t leaf, uint64_t thread,
                          uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kDetachThread, now, leaf, thread, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordMoveThread(hscommon::Time now, uint32_t to_leaf, uint64_t thread,
                        uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kMoveThread, now, to_leaf, thread, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordMoveNode(hscommon::Time now, uint32_t node, uint32_t to_parent,
                      uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kMoveNode, now, node, to_parent, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }

  // --- Kernel-hook taps (the hot path) ---

  void RecordSetRun(hscommon::Time now, uint32_t leaf, uint64_t thread,
                    uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kSetRun, now, leaf, thread, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordSleep(hscommon::Time now, uint32_t leaf, uint64_t thread,
                   uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kSleep, now, leaf, thread, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  // `start_tag_units` is the integer part of the picked child's SFQ start tag — the
  // interior node's virtual time, which must never regress (src/fault checks it).
  void RecordPickChild(hscommon::Time now, uint32_t interior, uint32_t child,
                       int64_t start_tag_units, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kPickChild, now, interior, child, start_tag_units,
                        0, {}, static_cast<uint16_t>(cpu)));
  }
  void RecordSchedule(hscommon::Time now, uint32_t leaf, uint64_t thread,
                      uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kSchedule, now, leaf, thread, 0, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordUpdate(hscommon::Time now, uint32_t leaf, uint64_t thread,
                    hscommon::Work used, bool still_runnable, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kUpdate, now, leaf, thread, used,
                        still_runnable ? 1 : 0, {}, static_cast<uint16_t>(cpu)));
  }

  // --- Simulator taps ---

  void RecordThreadName(hscommon::Time now, uint32_t leaf, uint64_t thread,
                        std::string_view name, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kThreadName, now, leaf, thread, 0, 0, name,
                        static_cast<uint16_t>(cpu)));
  }
  void RecordDispatch(hscommon::Time now, uint64_t thread, hscommon::Work quantum,
                      uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kDispatch, now, 0, thread, quantum, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordInterrupt(hscommon::Time now, hscommon::Work stolen, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kInterrupt, now, 0, 0, stolen, 0, {},
                        static_cast<uint16_t>(cpu)));
  }
  void RecordIdle(hscommon::Time now, hscommon::Time until, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kIdle, now, 0, static_cast<uint64_t>(until),
                        until - now, 0, {}, static_cast<uint16_t>(cpu)));
  }

  // --- Sharded-dispatch taps (src/sim/shard.h) ---

  // A leaf crossed between per-CPU shards: `steal` for an idle/fairness work-steal
  // (false = the periodic rebalance pass), `rehomed` when the leaf's home CPU moved
  // (a steal without it is a one-slice borrow). Recorded on the destination CPU's
  // ring just before the dispatch it enabled.
  void RecordMigrate(hscommon::Time now, uint32_t leaf, uint32_t from_cpu,
                     uint32_t to_cpu, bool steal, bool rehomed, uint32_t cpu = 0) {
    if (!enabled_) return;
    const uint8_t flags =
        static_cast<uint8_t>((steal ? 1 : 0) | (rehomed ? 2 : 0));
    Push(cpu, MakeEvent(EventType::kMigrate, now, leaf, from_cpu,
                        static_cast<int64_t>(to_cpu), flags, {},
                        static_cast<uint16_t>(cpu)));
  }

  // --- Real-time leaf taps (src/rt) ---

  // An admission decision at an admission-controlled leaf (the paper's hsfq_admin):
  // `would_be_utilization_ppm` is the leaf's booked utilization plus the requested
  // task's C/T, in parts per million; `scheduler` names the leaf class ("edf", "rma").
  void RecordAdmit(hscommon::Time now, uint32_t leaf, uint64_t thread,
                   int64_t would_be_utilization_ppm, bool accepted,
                   std::string_view scheduler, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kAdmit, now, leaf, thread,
                        would_be_utilization_ppm, accepted ? 1 : 0, scheduler,
                        static_cast<uint16_t>(cpu)));
  }
  // A deadline-stamped job completed `tardiness` ns past its absolute deadline.
  void RecordDeadlineMiss(hscommon::Time now, uint32_t leaf, uint64_t thread,
                          hscommon::Time tardiness, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kDeadlineMiss, now, leaf, thread, tardiness, 0, {},
                        static_cast<uint16_t>(cpu)));
  }

  // --- Overload-governor taps (src/guard) ---

  // One governor mitigation decision: `action` is the typed code mirrored in `name`
  // ("demote"/"revoke"/"throttle"/"restore"/"backoff"), `node` the acted-on node,
  // `a`/`b` the action-specific argument and magnitude (see GovernAction).
  void RecordGovern(hscommon::Time now, GovernAction action, uint32_t node,
                    uint64_t a, int64_t b, std::string_view name, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kGovern, now, node, a, b,
                        static_cast<uint8_t>(action), name,
                        static_cast<uint16_t>(cpu)));
  }

  // --- Fault-injection taps (src/fault) ---

  // `kind` is a short tag like "drop-wake"; `magnitude` is the fault's size in
  // nanoseconds (delay, stolen time, extra overhead) or 0 when not applicable.
  void RecordFault(hscommon::Time now, std::string_view kind, uint64_t thread,
                   int64_t magnitude, uint32_t cpu = 0) {
    if (!enabled_) return;
    Push(cpu, MakeEvent(EventType::kFault, now, 0, thread, magnitude, 0, kind,
                        static_cast<uint16_t>(cpu)));
  }

 private:
  void Push(uint32_t cpu, const TraceEvent& event) {
    assert(cpu < rings_.size());
    rings_[cpu].Push(event);
  }

  void PushStartMarker() {
    // b carries the CPU count only for genuinely SMP tracers so single-CPU traces stay
    // byte-identical with recordings made before rings were per-CPU.
    const int64_t smp_cpus = rings_.size() > 1 ? static_cast<int64_t>(rings_.size()) : 0;
    rings_[0].Push(MakeEvent(EventType::kTraceStart, 0, 0,
                             static_cast<uint64_t>(rings_[0].capacity()), smp_cpus, 0,
                             "hsched"));
  }

  std::vector<EventRing> rings_;
  bool enabled_ = true;
};

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_TRACER_H_
