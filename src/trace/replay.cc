#include "src/trace/replay.h"

#include <cstdio>
#include <cstring>

namespace htrace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kTraceStart: return "TraceStart";
    case EventType::kMakeNode: return "MakeNode";
    case EventType::kRemoveNode: return "RemoveNode";
    case EventType::kSetWeight: return "SetWeight";
    case EventType::kAttachThread: return "AttachThread";
    case EventType::kDetachThread: return "DetachThread";
    case EventType::kMoveThread: return "MoveThread";
    case EventType::kSetRun: return "SetRun";
    case EventType::kSleep: return "Sleep";
    case EventType::kPickChild: return "PickChild";
    case EventType::kSchedule: return "Schedule";
    case EventType::kUpdate: return "Update";
    case EventType::kThreadName: return "ThreadName";
    case EventType::kDispatch: return "Dispatch";
    case EventType::kInterrupt: return "Interrupt";
    case EventType::kIdle: return "Idle";
    case EventType::kFault: return "Fault";
    case EventType::kMoveNode: return "MoveNode";
    case EventType::kMigrate: return "Migrate";
    case EventType::kAdmit: return "Admit";
    case EventType::kDeadlineMiss: return "DeadlineMiss";
    case EventType::kGovern: return "Govern";
  }
  return "Unknown";
}

std::string EventToString(const TraceEvent& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%lld] %s node=%u a=%llu b=%lld flags=%u",
                static_cast<long long>(event.time), EventTypeName(event.type), event.node,
                static_cast<unsigned long long>(event.a), static_cast<long long>(event.b),
                event.flags);
  std::string out(buf);
  if (event.cpu != 0) {
    out += " cpu=" + std::to_string(event.cpu);
  }
  if (event.name[0] != '\0') {
    out += " name='";
    out.append(event.name,
               strnlen(event.name, kEventNameCapacity));
    out += '\'';
  }
  return out;
}

TraceDiff DiffTraces(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) {
  TraceDiff diff;
  const size_t common = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < common; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(TraceEvent)) != 0) {
      diff.identical = false;
      diff.first_divergence = i;
      diff.description = "event " + std::to_string(i) + " differs:\n  run A: " +
                         EventToString(a[i]) + "\n  run B: " + EventToString(b[i]);
      return diff;
    }
  }
  if (a.size() != b.size()) {
    diff.identical = false;
    diff.first_divergence = common;
    diff.description = "trace lengths differ: run A has " + std::to_string(a.size()) +
                       " events, run B has " + std::to_string(b.size());
    return diff;
  }
  diff.identical = true;
  return diff;
}

TraceDiff DiffTraces(const Tracer& a, const Tracer& b) {
  return DiffTraces(a.MergedSnapshot(), b.MergedSnapshot());
}

}  // namespace htrace
