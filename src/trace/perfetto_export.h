// Chrome trace_event / Perfetto JSON export.
//
// Converts a recorded event stream into the JSON trace format that ui.perfetto.dev and
// chrome://tracing load directly. The mapping:
//   * one Perfetto thread track per scheduling node (tid = node id, pid = 1), named by
//     the node's "/"-rooted path — interior nodes included, so the hierarchy's dispatch
//     attribution is visible at every level;
//   * each Schedule -> Update pair becomes a complete ("X") slice on the picked leaf's
//     track AND on every ancestor track, named after the running thread;
//   * each SetRun becomes an instant ("i") wakeup marker on the leaf's track;
//   * each Update also advances a per-leaf "service:<path>" counter ("C") with the
//     cumulative subtree service in milliseconds.
// Timestamps are microseconds (the format's unit); the simulation's t=0 maps to ts=0.

#ifndef HSCHED_SRC_TRACE_PERFETTO_EXPORT_H_
#define HSCHED_SRC_TRACE_PERFETTO_EXPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace htrace {

// Writes the Perfetto JSON for `events` to `path`. `dropped` is the ring's drop
// counter at snapshot time; when non-zero the export carries it in the top-level
// "otherData" metadata and emits a warning instant marker at the start of the trace,
// so a truncated view is visibly truncated in the UI.
hscommon::Status ExportPerfettoJson(const std::vector<TraceEvent>& events,
                                    const std::string& path, uint64_t dropped);
hscommon::Status ExportPerfettoJson(const std::vector<TraceEvent>& events,
                                    const std::string& path);

// Convenience overload exporting a tracer's retained ring (and its drop counter).
hscommon::Status ExportPerfettoJson(const Tracer& tracer, const std::string& path);

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_PERFETTO_EXPORT_H_
