// The trace event record — one fixed-size POD per scheduling decision.
//
// Every decision point of the scheduler stack (SchedulingStructure hooks, simulator
// dispatch/interrupt/idle transitions, structural mknod/rmnod/move operations) appends
// one 48-byte TraceEvent to a preallocated ring (src/trace/ring.h). Events are plain
// bytes: trivially copyable, no padding holes, no pointers — so a trace can be written
// to disk verbatim, read back on any little-endian machine, and two runs of the same
// scenario can be compared with memcmp (the record/replay oracle, src/trace/replay.h).
//
// Field meaning depends on the event type; see the table in docs/observability.md.

#ifndef HSCHED_SRC_TRACE_EVENT_H_
#define HSCHED_SRC_TRACE_EVENT_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "src/common/types.h"

namespace htrace {

enum class EventType : uint8_t {
  kTraceStart = 0,   // ring capacity in a; b = CPU count when tracing an SMP run
                     // (0 for single-CPU traces, so old recordings stay byte-identical)
  // Structure management (the paper's hsfq_mknod / hsfq_rmnod / hsfq_admin).
  kMakeNode = 1,     // node = new node, a = parent, b = weight, flags = 1 if leaf,
                     // name = first 15 chars of the path component
  kRemoveNode = 2,   // node removed
  kSetWeight = 3,    // node, a = new weight
  kAttachThread = 4, // node = leaf, a = thread, b = params.weight
  kDetachThread = 5, // node = leaf the thread left, a = thread
  kMoveThread = 6,   // node = destination leaf, a = thread
  // Kernel hooks (hsfq_setrun / hsfq_sleep / hsfq_schedule / hsfq_update).
  kSetRun = 7,       // node = leaf, a = thread
  kSleep = 8,        // node = leaf, a = thread
  kPickChild = 9,    // node = interior node, a = child picked by its SFQ,
                     // b = integer part of the picked child's SFQ start tag (the node's
                     // virtual time — non-decreasing per interior node; src/fault checks)
  kSchedule = 10,    // node = leaf whose class scheduler picked, a = thread
  kUpdate = 11,      // node = leaf, a = thread, b = service used, flags = still_runnable
  // Simulator events (hsim::System).
  kThreadName = 12,  // node = leaf, a = thread, name = first 15 chars of the name
  kDispatch = 13,    // a = thread, b = quantum granted
  kInterrupt = 14,   // b = CPU time stolen by the interrupt
  kIdle = 15,        // a = wall time the CPU went idle until, b = idle duration
  // Fault injection (src/fault). Marks where a FaultInjector perturbed the run, so
  // divergence analysis can anchor the blast radius to the injection point.
  kFault = 16,       // a = target thread (or ~0), b = magnitude (ns), name = fault kind
  kMoveNode = 17,    // node = moved node, a = new parent (hsfq_move of a whole class)
  // Sharded SMP dispatch (src/sim/shard.h): a leaf crossed between per-CPU shards.
  kMigrate = 18,     // node = leaf, a = source CPU, b = destination CPU,
                     // flags bit0 = work-steal (0 = rebalance pass), bit1 = the
                     // leaf's home moved (a steal without it is a one-slice borrow)
  // Real-time leaf classes (src/rt): admission control and deadline accounting.
  kAdmit = 19,       // node = leaf, a = thread, b = would-be utilization of the leaf
                     // in ppm (booked + requested), flags bit0 = accepted,
                     // name = leaf scheduler name (paper's hsfq_admin)
  kDeadlineMiss = 20,// node = leaf, a = thread, b = tardiness (completion - deadline,
                     // ns); emitted once per job that completes past its deadline
  // Overload governor (src/guard): every online mitigation decision is a trace event,
  // so governed runs replay byte-identically and blast-radius analysis can anchor to
  // the exact governor action.
  kGovern = 21,      // node = acted-on node, a = action argument (destination node,
                     // throttled sibling, or retry op hash), b = magnitude (miss count,
                     // restored weight, or backoff ns), flags = GovernAction code,
                     // name = action ("demote"/"revoke"/"throttle"/"restore"/"backoff")
};

// GovernAction codes carried in TraceEvent::flags for kGovern events.
enum class GovernAction : uint8_t {
  kDemote = 1,    // node = demoted leaf, a = destination (penalty) node, b = window miss count
  kRevoke = 2,    // node = leaf whose admissions were revoked, b = booked utilization ppm
  kThrottle = 3,  // node = throttled best-effort node, b = new weight
  kRestore = 4,   // node = restored node, b = restored weight
  kBackoff = 5,   // node = target node of the retried api op, a = attempt #, b = delay ns
};

// Human-readable tag, for dumps and diff reports.
const char* EventTypeName(EventType type);

// Capacity of TraceEvent::name (including the NUL when the string is shorter).
inline constexpr size_t kEventNameCapacity = 16;

struct TraceEvent {
  hscommon::Time time;  // simulated wall clock of the decision
  uint64_t a;           // thread id / parent node / capacity (see EventType)
  int64_t b;            // service, weight, quantum, duration (see EventType)
  uint32_t node;        // scheduling-structure node id (0 = root or n/a)
  EventType type;
  uint8_t flags;                  // still_runnable / is_leaf bits
  char name[kEventNameCapacity];  // NUL-padded component or thread name
  uint16_t cpu;                   // CPU the decision ran on (0 on single-CPU runs)
};

// The byte-diff oracle depends on the record having no padding holes: every byte of a
// TraceEvent is defined after MakeEvent below.
static_assert(sizeof(TraceEvent) == 48, "TraceEvent must stay exactly 48 bytes");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

// Builds a fully zero-initialized event (name zero-padded), so memcmp comparisons and
// on-disk bytes are deterministic.
inline TraceEvent MakeEvent(EventType type, hscommon::Time time, uint32_t node,
                            uint64_t a, int64_t b, uint8_t flags = 0,
                            std::string_view name = {}, uint16_t cpu = 0) {
  TraceEvent e;
  std::memset(&e, 0, sizeof(e));
  e.time = time;
  e.a = a;
  e.b = b;
  e.node = node;
  e.type = type;
  e.flags = flags;
  const size_t n = name.size() < kEventNameCapacity - 1 ? name.size()
                                                        : kEventNameCapacity - 1;
  std::memcpy(e.name, name.data(), n);
  e.cpu = cpu;
  return e;
}

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_EVENT_H_
