// Binary trace file I/O.
//
// Format (little-endian, host layout — the records are the in-memory PODs):
//   offset 0: magic   "HSTRACE1"                  (8 bytes)
//   offset 8: version uint32 (currently 1)
//   offset 12: event_size uint32 (sizeof(TraceEvent) == 48; readers reject a mismatch)
//   offset 16: event_count uint64
//   offset 24: dropped uint64 (events lost to ring wraparound before the snapshot)
//   offset 32: event_count * event_size bytes of TraceEvent records, oldest first
//
// A trace written by WriteTraceFile and read back by ReadTraceFile is byte-identical,
// so file-level `cmp` is an equivalent determinism oracle to in-memory DiffTraces.

#ifndef HSCHED_SRC_TRACE_TRACE_IO_H_
#define HSCHED_SRC_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace htrace {

inline constexpr char kTraceMagic[8] = {'H', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
inline constexpr uint32_t kTraceVersion = 1;

// The deserialized contents of a trace file.
struct TraceFile {
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

// Writes the tracer's retained events (oldest first) to `path`.
hscommon::Status WriteTraceFile(const Tracer& tracer, const std::string& path);

// Writes an explicit event sequence (e.g. a filtered or replayed one).
hscommon::Status WriteTraceFile(const std::vector<TraceEvent>& events, uint64_t dropped,
                                const std::string& path);

// Reads a trace file back, validating magic, version and record size.
hscommon::StatusOr<TraceFile> ReadTraceFile(const std::string& path);

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_TRACE_IO_H_
