// Trace analysis: per-node service timelines, dispatch latencies, and the paper's §3
// fairness bound, computed directly from a recorded event stream.
//
// The analyzer replays the structural events (MakeNode/SetWeight/...) to rebuild the
// node tree, then folds every Update into a per-node cumulative-service step function —
// the same quantity the paper plots in Figures 5–11, but with per-decision resolution
// instead of a sampler's fixed intervals. Nodes created before tracing started appear
// as placeholders named "node:<id>" (their service is still accounted, but without
// ancestor attribution, since their parent is unknown).

#ifndef HSCHED_SRC_TRACE_READER_H_
#define HSCHED_SRC_TRACE_READER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/trace/event.h"

namespace htrace {

using hscommon::Time;
using hscommon::Work;

class TraceAnalyzer {
 public:
  static constexpr uint32_t kNoParent = UINT32_MAX;

  struct NodeInfo {
    uint32_t id = 0;
    uint32_t parent = kNoParent;
    std::string path;        // "/"-rooted path, or "node:<id>" for pre-trace nodes
    uint64_t weight = 1;     // most recent weight seen in the trace
    bool is_leaf = false;
    bool removed = false;
    Work total_service = 0;  // cumulative service charged to this subtree
    uint64_t dispatches = 0; // Schedule events that picked inside this subtree
    // (slice-end time, cumulative subtree service after that slice), non-decreasing.
    std::vector<std::pair<Time, Work>> timeline;
  };

  // `dropped` is the ring's drop counter at snapshot time (events lost to wraparound
  // before this stream); analyses that assume a complete stream should check it.
  explicit TraceAnalyzer(const std::vector<TraceEvent>& events, uint64_t dropped = 0);

  // Nodes keyed by id; std::map so iteration order is deterministic.
  const std::map<uint32_t, NodeInfo>& nodes() const { return nodes_; }

  hscommon::StatusOr<uint32_t> NodeByPath(const std::string& path) const;

  // Cumulative subtree service charged by wall time `t` (step function over slice ends).
  Work ServiceAt(uint32_t node, Time t) const;

  // Service attained in the window (t0, t1].
  Work ServiceIn(uint32_t node, Time t0, Time t1) const {
    return ServiceAt(node, t1) - ServiceAt(node, t0);
  }

  // The §3 fairness measure |W_f(t0,t1)/r_f − W_g(t0,t1)/r_g| in nanoseconds of service
  // per unit weight. Meaningful over windows where both nodes stay backlogged (SFQ's
  // guarantee is conditioned on continuous backlog).
  double FairnessGap(uint32_t f, uint32_t g, Time t0, Time t1) const;

  // Wakeup -> dispatch latency samples (ns) for one thread: every SetRun matched with
  // the next Schedule that picked the thread.
  std::vector<Time> DispatchLatencies(uint64_t thread) const;

  // One contiguous runnable episode of a thread: it became runnable at `wake`
  // (kSetRun), attained `service` across one or more slices, and blocked again at
  // `block` (the kUpdate with still_runnable=0, or a kSleep). The workload-synthesis
  // layer (src/synth) treats an episode as one compute burst.
  struct ThreadBurst {
    Time wake = 0;
    Time block = 0;
    Work service = 0;
    // False when the trace ended mid-episode: the thread was still runnable (or mid
    // slice) at the horizon, so `service` undercounts the source burst.
    bool complete = false;
  };

  // Everything the trace says about one thread's behaviour: where it lived in the
  // tree, when it arrived, and its wake/compute/block episodes in time order.
  struct ThreadActivity {
    uint64_t thread = 0;
    std::string name;            // last kThreadName ("" when the trace has none)
    uint32_t leaf = UINT32_MAX;  // leaf of the first attach (or first kernel-hook event)
    uint64_t weight = 1;         // ThreadParams::weight recorded by kAttachThread
    bool attached = false;       // an explicit kAttachThread was seen
    Time attach_time = 0;
    std::vector<ThreadBurst> bursts;
    // True when the thread's last burst completed and it never woke again before the
    // trace ended — indistinguishable in the stream from an exit, which is how the
    // synthesis layer interprets it.
    bool ends_blocked = false;
  };

  // Per-thread activity for every thread seen in the stream, ordered by thread id.
  std::vector<ThreadActivity> ThreadActivities() const;

  // Last name recorded for a thread ("" when the trace has none).
  std::string ThreadName(uint64_t thread) const;

  uint64_t schedule_count() const { return schedule_count_; }
  uint64_t update_count() const { return update_count_; }
  Time first_time() const { return first_time_; }
  Time last_time() const { return last_time_; }

  // CPUs the recording simulator had (from the kTraceStart marker; 1 for traces made
  // before rings were per-CPU and for single-CPU runs).
  int cpus() const { return cpus_; }

  // Per-CPU activity aggregated from the stream: dispatch decisions made on that
  // CPU, service charged by the slices it closed, traced idle spans, and the
  // sharded-dispatch migration traffic that landed on it (kMigrate events are
  // recorded on the destination CPU's ring). `utilization` is busy over
  // busy + idle — dispatch overhead is in neither bucket, so a machine that
  // never traced an idle span reports 1.0.
  struct CpuStats {
    int cpu = 0;
    uint64_t dispatches = 0;  // kSchedule events on this CPU
    Work busy = 0;            // service charged by kUpdate events on this CPU
    Time idle = 0;            // summed kIdle durations
    uint64_t steals = 0;      // kMigrate with the work-steal flag, destination here
    uint64_t rebalances = 0;  // kMigrate from a rebalance pass, destination here
    double utilization = 0.0;
  };

  // One entry per CPU announced by kTraceStart (plus any extra CPU ids that
  // appear in the stream), ordered by CPU id.
  std::vector<CpuStats> PerCpuStats() const;

  // Real-time metric family of one leaf, folded from the kAdmit / kDeadlineMiss
  // events (src/rt). `releases` counts kSetRun wakeups into the leaf — each wakeup is
  // a job release for periodic RT threads. An overrunning thread chains jobs without
  // blocking (one wake covers several jobs), so releases undercounts under overload;
  // miss_rate is then a conservative upper bound, which is the useful direction.
  struct LeafRtStats {
    uint32_t leaf = 0;
    uint64_t releases = 0;         // kSetRun wakeups into this leaf
    uint64_t misses = 0;           // kDeadlineMiss events on this leaf
    uint64_t admits_accepted = 0;  // kAdmit probes with the accepted flag
    uint64_t admits_rejected = 0;
    double miss_rate = 0.0;        // misses / max(releases, misses)
    std::vector<Time> tardiness;   // per-miss completion - deadline, sorted ascending
  };

  // One entry per leaf that saw any wakeup, admission probe, or deadline miss,
  // ordered by leaf id.
  std::vector<LeafRtStats> PerLeafRtStats() const;

  // One overload-governor action (kGovern event), decoded. The campaign and tests
  // read these to assert mitigation ordering (e.g. a demote within one detection
  // window of the first fault) without touching raw event fields.
  struct GovernorAction {
    Time time = 0;
    GovernAction action = GovernAction::kDemote;
    uint32_t node = 0;   // acted-on node
    uint64_t arg = 0;    // destination node / attempt # (see event.h)
    int64_t magnitude = 0;  // miss count / weight / backoff ns
    std::string name;    // "demote" / "revoke" / "throttle" / "restore" / "backoff"
  };

  // Every kGovern event in stream order (empty when no governor ran).
  std::vector<GovernorAction> GovernorActions() const;

  // Nearest-rank percentile of an ascending-sorted sample vector. `p` is a PERCENT in
  // [0, 100]. Pinned contract (the RT miss-rate JSON consumes these unguarded):
  //   * empty input          -> 0
  //   * p <= 0, NaN, or -inf -> the minimum (front)
  //   * p >= 100 or +inf     -> the maximum (back)
  //   * otherwise            -> sorted[ceil(p/100 * n) - 1] (classic nearest-rank);
  //     a single-sample vector returns that sample for every p.
  static Time Percentile(const std::vector<Time>& sorted, double p);

  // Events lost to ring wraparound before this stream (0 = complete trace). When
  // non-zero, the stream starts mid-scenario: early structural events may be missing
  // and absolute service totals undercount.
  uint64_t dropped() const { return dropped_; }
  bool truncated() const { return dropped_ != 0; }

 private:
  NodeInfo& NodeOrPlaceholder(uint32_t id);
  void ReparentNode(uint32_t id, uint32_t new_parent);
  void RebuildSubtreePaths(uint32_t id);

  std::map<uint32_t, NodeInfo> nodes_;
  std::map<uint64_t, std::string> thread_names_;
  std::vector<TraceEvent> events_;  // retained for latency queries
  uint64_t schedule_count_ = 0;
  uint64_t update_count_ = 0;
  uint64_t dropped_ = 0;
  Time first_time_ = 0;
  Time last_time_ = 0;
  int cpus_ = 1;
};

}  // namespace htrace

#endif  // HSCHED_SRC_TRACE_READER_H_
