#include "src/trace/perfetto_export.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/trace/reader.h"

namespace htrace {

using hscommon::InvalidArgument;
using hscommon::Status;

namespace {

// JSON string escaping for paths and thread names (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  // Emits one traceEvents element from preassembled body text.
  void Emit(const std::string& body) {
    std::fprintf(f_, "%s    {%s}", first_ ? "" : ",\n", body.c_str());
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

// Slice/marker label: the recorded thread name when the trace has one, else "t<id>".
std::string ThreadLabel(const TraceAnalyzer& analyzer, uint64_t thread) {
  const std::string name = analyzer.ThreadName(thread);
  return name.empty() ? "t" + std::to_string(thread) : name;
}

std::string Us(hscommon::Time ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

Status ExportPerfettoJson(const std::vector<TraceEvent>& events, const std::string& path,
                          uint64_t dropped) {
  const TraceAnalyzer analyzer(events, dropped);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgument("cannot open '" + path + "' for writing");
  }
  std::fputs("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n", f);
  JsonWriter w(f);

  w.Emit("\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
         "\"args\": {\"name\": \"hsched scheduling structure\"}");
  // SMP traces get a second process with one track per CPU: what ran where, plus idle
  // gaps. Single-CPU traces keep the exact pre-SMP output.
  const bool smp = analyzer.cpus() > 1;
  if (smp) {
    w.Emit("\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 2, "
           "\"args\": {\"name\": \"hsched cpus\"}");
    for (int cpu = 0; cpu < analyzer.cpus(); ++cpu) {
      w.Emit("\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 2, \"tid\": " +
             std::to_string(cpu) + ", \"args\": {\"name\": \"cpu" +
             std::to_string(cpu) + "\"}");
      w.Emit("\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 2, \"tid\": " +
             std::to_string(cpu) + ", \"args\": {\"sort_index\": " +
             std::to_string(cpu) + "}");
    }
  }
  if (dropped > 0) {
    // Make truncation visible in the UI, not just in the metadata at the bottom.
    w.Emit("\"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 0, \"ts\": " +
           Us(analyzer.first_time()) + ", \"name\": \"WARNING: ring dropped " +
           std::to_string(dropped) + " events before this window\"");
  }
  // One track per scheduling node, ordered by id (root first).
  for (const auto& [id, info] : analyzer.nodes()) {
    w.Emit("\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": " +
           std::to_string(id) + ", \"args\": {\"name\": \"" + JsonEscape(info.path) +
           "\"}");
    w.Emit("\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, \"tid\": " +
           std::to_string(id) + ", \"args\": {\"sort_index\": " + std::to_string(id) +
           "}");
  }

  // Walk the stream pairing Schedule with the matching Update (one dispatch in flight
  // per CPU, so the pairing state is keyed by the recording CPU) and accumulating
  // per-node service for the counters.
  std::map<uint32_t, hscommon::Work> service;
  struct PendingSchedule {
    bool pending = false;
    hscommon::Time time = 0;
    uint64_t thread = 0;
  };
  std::map<uint16_t, PendingSchedule> pending_by_cpu;
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case EventType::kSchedule: {
        PendingSchedule& p = pending_by_cpu[e.cpu];
        p.pending = true;
        p.time = e.time;
        p.thread = e.a;
        break;
      }
      case EventType::kSetRun: {
        w.Emit("\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " +
               std::to_string(e.node) + ", \"ts\": " + Us(e.time) +
               ", \"name\": \"wake " + JsonEscape(ThreadLabel(analyzer, e.a)) + "\"");
        break;
      }
      case EventType::kFault: {
        // Process-scoped marker so injected faults are visible on every track.
        const std::string kind(e.name, strnlen(e.name, kEventNameCapacity));
        w.Emit("\"ph\": \"i\", \"s\": \"p\", \"pid\": 1, \"tid\": 0, \"ts\": " +
               Us(e.time) + ", \"name\": \"fault:" + JsonEscape(kind) +
               "\", \"args\": {\"thread\": " + std::to_string(e.a) +
               ", \"magnitude_ns\": " + std::to_string(e.b) + "}");
        break;
      }
      case EventType::kAdmit: {
        // Thread-scoped instant on the probed leaf's track: admission verdict with the
        // would-be utilization, so rejected probes are visible next to the workload
        // they would have joined.
        const std::string sched(e.name, strnlen(e.name, kEventNameCapacity));
        const bool accepted = (e.flags & 1u) != 0;
        w.Emit("\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " +
               std::to_string(e.node) + ", \"ts\": " + Us(e.time) +
               ", \"name\": \"admit " + std::string(accepted ? "ok" : "REJECT") + " " +
               JsonEscape(ThreadLabel(analyzer, e.a)) +
               "\", \"args\": {\"thread\": " + std::to_string(e.a) +
               ", \"scheduler\": \"" + JsonEscape(sched) +
               "\", \"accepted\": " + (accepted ? "true" : "false") +
               ", \"utilization_ppm\": " + std::to_string(e.b) + "}");
        break;
      }
      case EventType::kDeadlineMiss: {
        // Process-scoped marker (like faults): a missed deadline is the headline
        // failure signal for an RT run and should be visible on every track.
        w.Emit("\"ph\": \"i\", \"s\": \"p\", \"pid\": 1, \"tid\": 0, \"ts\": " +
               Us(e.time) + ", \"name\": \"deadline-miss " +
               JsonEscape(ThreadLabel(analyzer, e.a)) +
               "\", \"args\": {\"thread\": " + std::to_string(e.a) +
               ", \"node\": " + std::to_string(e.node) +
               ", \"tardiness_ns\": " + std::to_string(e.b) + "}");
        break;
      }
      case EventType::kGovern: {
        // Process-scoped marker (like faults): a governor mitigation changes the
        // machine's policy and should be visible on every track.
        const std::string action(e.name, strnlen(e.name, kEventNameCapacity));
        w.Emit("\"ph\": \"i\", \"s\": \"p\", \"pid\": 1, \"tid\": 0, \"ts\": " +
               Us(e.time) + ", \"name\": \"govern:" + JsonEscape(action) +
               "\", \"args\": {\"node\": " + std::to_string(e.node) +
               ", \"arg\": " + std::to_string(e.a) +
               ", \"magnitude\": " + std::to_string(e.b) + "}");
        break;
      }
      case EventType::kMigrate:
        // Instant on the destination CPU's track: a leaf crossed shards, either
        // stolen by an idle/lagging CPU or rehomed by a rebalance pass.
        if (smp) {
          w.Emit("\"ph\": \"i\", \"s\": \"t\", \"pid\": 2, \"tid\": " +
                 std::to_string(e.cpu) + ", \"ts\": " + Us(e.time) + ", \"name\": \"" +
                 std::string((e.flags & 1u) != 0 ? "steal" : "rebalance") + " node " +
                 std::to_string(e.node) + "\", \"args\": {\"node\": " +
                 std::to_string(e.node) + ", \"from_cpu\": " + std::to_string(e.a) +
                 ", \"to_cpu\": " + std::to_string(e.b) + ", \"rehomed\": " +
                 ((e.flags & 2u) != 0 ? "true" : "false") + "}");
        }
        break;
      case EventType::kIdle:
        if (smp) {
          w.Emit("\"ph\": \"X\", \"cat\": \"idle\", \"pid\": 2, \"tid\": " +
                 std::to_string(e.cpu) + ", \"ts\": " + Us(e.time) + ", \"dur\": " +
                 Us(e.b) + ", \"name\": \"idle\"");
        }
        break;
      case EventType::kUpdate: {
        PendingSchedule& p = pending_by_cpu[e.cpu];
        const hscommon::Time start = p.pending && p.thread == e.a
                                         ? p.time
                                         : e.time - e.b;  // fall back to used-as-duration
        p.pending = false;
        const std::string label = JsonEscape(ThreadLabel(analyzer, e.a));
        const std::string common =
            "\"ph\": \"X\", \"cat\": \"dispatch\", \"pid\": 1, \"ts\": " + Us(start) +
            ", \"dur\": " + Us(e.time - start) + ", \"name\": \"" + label +
            "\", \"args\": {\"thread\": " + std::to_string(e.a) +
            ", \"service_ns\": " + std::to_string(e.b) +
            ", \"still_runnable\": " + (e.flags ? "true" : "false") + "}";
        // SMP: the slice also lands on the CPU it ran on.
        if (smp) {
          w.Emit("\"ph\": \"X\", \"cat\": \"dispatch\", \"pid\": 2, \"tid\": " +
                 std::to_string(e.cpu) + ", \"ts\": " + Us(start) + ", \"dur\": " +
                 Us(e.time - start) + ", \"name\": \"" + label +
                 "\", \"args\": {\"thread\": " + std::to_string(e.a) +
                 ", \"node\": " + std::to_string(e.node) + "}");
        }
        // The slice appears on the leaf and every known ancestor track.
        const auto& nodes = analyzer.nodes();
        for (uint32_t cur = e.node;;) {
          w.Emit(common + ", \"tid\": " + std::to_string(cur));
          service[cur] += e.b;
          const auto it = nodes.find(cur);
          if (cur == 0 || it == nodes.end() || it->second.parent == TraceAnalyzer::kNoParent) {
            break;
          }
          cur = it->second.parent;
        }
        // Service counter on the leaf (milliseconds, so the y axis is readable).
        const auto leaf = nodes.find(e.node);
        if (leaf != nodes.end()) {
          char value[48];
          std::snprintf(value, sizeof(value), "%.3f",
                        static_cast<double>(service[e.node]) / 1e6);
          w.Emit("\"ph\": \"C\", \"pid\": 1, \"name\": \"service:" +
                 JsonEscape(leaf->second.path) + "\", \"ts\": " + Us(e.time) +
                 ", \"args\": {\"ms\": " + value + "}");
        }
        break;
      }
      default:
        break;
    }
  }
  std::fputs("\n  ],\n", f);
  std::fprintf(f,
               "  \"otherData\": {\"dropped_events\": %llu, \"retained_events\": %zu}\n",
               static_cast<unsigned long long>(dropped), events.size());
  std::fputs("}\n", f);
  if (std::fclose(f) != 0) {
    return InvalidArgument("short write to '" + path + "'");
  }
  return Status::Ok();
}

Status ExportPerfettoJson(const std::vector<TraceEvent>& events, const std::string& path) {
  return ExportPerfettoJson(events, path, 0);
}

Status ExportPerfettoJson(const Tracer& tracer, const std::string& path) {
  return ExportPerfettoJson(tracer.MergedSnapshot(), path, tracer.TotalDropped());
}

}  // namespace htrace
