#include "src/trace/reader.h"

#include <algorithm>
#include <cstring>

namespace htrace {

using hscommon::NotFound;
using hscommon::StatusOr;

namespace {

std::string NameField(const TraceEvent& e) {
  return std::string(e.name, strnlen(e.name, kEventNameCapacity));
}

}  // namespace

TraceAnalyzer::NodeInfo& TraceAnalyzer::NodeOrPlaceholder(uint32_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    NodeInfo info;
    info.id = id;
    info.path = id == 0 ? "/" : "node:" + std::to_string(id);
    info.parent = kNoParent;
    it = nodes_.emplace(id, std::move(info)).first;
  }
  return it->second;
}

TraceAnalyzer::TraceAnalyzer(const std::vector<TraceEvent>& events, uint64_t dropped)
    : events_(events), dropped_(dropped) {
  NodeOrPlaceholder(0);  // the root always exists
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (first && e.type != EventType::kTraceStart) {
      first_time_ = e.time;
      first = false;
    }
    last_time_ = std::max(last_time_, e.time);
    switch (e.type) {
      case EventType::kTraceStart:
        if (e.b > 1) {
          cpus_ = static_cast<int>(e.b);
        }
        break;
      case EventType::kMakeNode: {
        const uint32_t parent_id = static_cast<uint32_t>(e.a);
        NodeInfo& parent = NodeOrPlaceholder(parent_id);
        const std::string path =
            (parent.path == "/" ? "" : parent.path) + "/" + NameField(e);
        NodeInfo& n = NodeOrPlaceholder(e.node);
        n.parent = parent_id;
        n.path = path;
        n.weight = static_cast<uint64_t>(e.b);
        n.is_leaf = e.flags != 0;
        n.removed = false;
        break;
      }
      case EventType::kRemoveNode:
        NodeOrPlaceholder(e.node).removed = true;
        break;
      case EventType::kMoveNode:
        ReparentNode(e.node, static_cast<uint32_t>(e.a));
        break;
      case EventType::kSetWeight:
        NodeOrPlaceholder(e.node).weight = e.a;
        break;
      case EventType::kSchedule: {
        ++schedule_count_;
        for (uint32_t cur = e.node;;) {
          NodeInfo& n = NodeOrPlaceholder(cur);
          ++n.dispatches;
          if (cur == 0 || n.parent == kNoParent) break;
          cur = n.parent;
        }
        break;
      }
      case EventType::kUpdate: {
        ++update_count_;
        for (uint32_t cur = e.node;;) {
          NodeInfo& n = NodeOrPlaceholder(cur);
          n.total_service += e.b;
          n.timeline.emplace_back(e.time, n.total_service);
          if (cur == 0 || n.parent == kNoParent) break;
          cur = n.parent;
        }
        break;
      }
      case EventType::kThreadName:
        thread_names_[e.a] = NameField(e);
        break;
      default:
        break;
    }
  }
}

void TraceAnalyzer::ReparentNode(uint32_t id, uint32_t new_parent) {
  NodeInfo& n = NodeOrPlaceholder(id);
  NodeOrPlaceholder(new_parent);
  n.parent = new_parent;
  RebuildSubtreePaths(id);
}

void TraceAnalyzer::RebuildSubtreePaths(uint32_t id) {
  NodeInfo& n = nodes_.at(id);
  if (n.parent != kNoParent) {
    const size_t slash = n.path.rfind('/');
    // Placeholder nodes ("node:<id>") have no path component to carry over.
    if (slash != std::string::npos) {
      const NodeInfo& parent = nodes_.at(n.parent);
      n.path = (parent.path == "/" ? "" : parent.path) + n.path.substr(slash);
    }
  }
  for (auto& [child_id, child] : nodes_) {
    if (child_id != id && child.parent == id) {
      RebuildSubtreePaths(child_id);
    }
  }
}

StatusOr<uint32_t> TraceAnalyzer::NodeByPath(const std::string& path) const {
  for (const auto& [id, info] : nodes_) {
    if (info.path == path) {
      return id;
    }
  }
  return NotFound("no node with path '" + path + "' in the trace");
}

Work TraceAnalyzer::ServiceAt(uint32_t node, Time t) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.timeline.empty()) {
    return 0;
  }
  const auto& tl = it->second.timeline;
  // Last point with time <= t.
  const auto pos = std::upper_bound(
      tl.begin(), tl.end(), t,
      [](Time value, const std::pair<Time, Work>& p) { return value < p.first; });
  if (pos == tl.begin()) {
    return 0;
  }
  return std::prev(pos)->second;
}

double TraceAnalyzer::FairnessGap(uint32_t f, uint32_t g, Time t0, Time t1) const {
  const auto fi = nodes_.find(f);
  const auto gi = nodes_.find(g);
  if (fi == nodes_.end() || gi == nodes_.end()) {
    return 0.0;
  }
  const double wf = static_cast<double>(fi->second.weight);
  const double wg = static_cast<double>(gi->second.weight);
  const double sf = static_cast<double>(ServiceIn(f, t0, t1));
  const double sg = static_cast<double>(ServiceIn(g, t0, t1));
  const double gap = sf / wf - sg / wg;
  return gap < 0 ? -gap : gap;
}

std::vector<Time> TraceAnalyzer::DispatchLatencies(uint64_t thread) const {
  std::vector<Time> out;
  Time pending_wake = -1;
  for (const TraceEvent& e : events_) {
    if (e.type == EventType::kSetRun && e.a == thread) {
      pending_wake = e.time;
    } else if (e.type == EventType::kSchedule && e.a == thread && pending_wake >= 0) {
      out.push_back(e.time - pending_wake);
      pending_wake = -1;
    }
  }
  return out;
}

std::string TraceAnalyzer::ThreadName(uint64_t thread) const {
  const auto it = thread_names_.find(thread);
  return it == thread_names_.end() ? "" : it->second;
}

}  // namespace htrace
