#include "src/trace/reader.h"

#include <algorithm>
#include <cstring>

namespace htrace {

using hscommon::NotFound;
using hscommon::StatusOr;

namespace {

std::string NameField(const TraceEvent& e) {
  return std::string(e.name, strnlen(e.name, kEventNameCapacity));
}

}  // namespace

TraceAnalyzer::NodeInfo& TraceAnalyzer::NodeOrPlaceholder(uint32_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    NodeInfo info;
    info.id = id;
    info.path = id == 0 ? "/" : "node:" + std::to_string(id);
    info.parent = kNoParent;
    it = nodes_.emplace(id, std::move(info)).first;
  }
  return it->second;
}

TraceAnalyzer::TraceAnalyzer(const std::vector<TraceEvent>& events, uint64_t dropped)
    : events_(events), dropped_(dropped) {
  NodeOrPlaceholder(0);  // the root always exists
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (first && e.type != EventType::kTraceStart) {
      first_time_ = e.time;
      first = false;
    }
    last_time_ = std::max(last_time_, e.time);
    switch (e.type) {
      case EventType::kTraceStart:
        if (e.b > 1) {
          cpus_ = static_cast<int>(e.b);
        }
        break;
      case EventType::kMakeNode: {
        const uint32_t parent_id = static_cast<uint32_t>(e.a);
        NodeInfo& parent = NodeOrPlaceholder(parent_id);
        const std::string path =
            (parent.path == "/" ? "" : parent.path) + "/" + NameField(e);
        NodeInfo& n = NodeOrPlaceholder(e.node);
        n.parent = parent_id;
        n.path = path;
        n.weight = static_cast<uint64_t>(e.b);
        n.is_leaf = e.flags != 0;
        n.removed = false;
        break;
      }
      case EventType::kRemoveNode:
        NodeOrPlaceholder(e.node).removed = true;
        break;
      case EventType::kMoveNode:
        ReparentNode(e.node, static_cast<uint32_t>(e.a));
        break;
      case EventType::kSetWeight:
        NodeOrPlaceholder(e.node).weight = e.a;
        break;
      case EventType::kSchedule: {
        ++schedule_count_;
        for (uint32_t cur = e.node;;) {
          NodeInfo& n = NodeOrPlaceholder(cur);
          ++n.dispatches;
          if (cur == 0 || n.parent == kNoParent) break;
          cur = n.parent;
        }
        break;
      }
      case EventType::kUpdate: {
        ++update_count_;
        for (uint32_t cur = e.node;;) {
          NodeInfo& n = NodeOrPlaceholder(cur);
          n.total_service += e.b;
          n.timeline.emplace_back(e.time, n.total_service);
          if (cur == 0 || n.parent == kNoParent) break;
          cur = n.parent;
        }
        break;
      }
      case EventType::kThreadName:
        thread_names_[e.a] = NameField(e);
        break;
      default:
        break;
    }
  }
}

void TraceAnalyzer::ReparentNode(uint32_t id, uint32_t new_parent) {
  NodeInfo& n = NodeOrPlaceholder(id);
  NodeOrPlaceholder(new_parent);
  n.parent = new_parent;
  RebuildSubtreePaths(id);
}

void TraceAnalyzer::RebuildSubtreePaths(uint32_t id) {
  NodeInfo& n = nodes_.at(id);
  if (n.parent != kNoParent) {
    const size_t slash = n.path.rfind('/');
    // Placeholder nodes ("node:<id>") have no path component to carry over.
    if (slash != std::string::npos) {
      const NodeInfo& parent = nodes_.at(n.parent);
      n.path = (parent.path == "/" ? "" : parent.path) + n.path.substr(slash);
    }
  }
  for (auto& [child_id, child] : nodes_) {
    if (child_id != id && child.parent == id) {
      RebuildSubtreePaths(child_id);
    }
  }
}

StatusOr<uint32_t> TraceAnalyzer::NodeByPath(const std::string& path) const {
  for (const auto& [id, info] : nodes_) {
    if (info.path == path) {
      return id;
    }
  }
  return NotFound("no node with path '" + path + "' in the trace");
}

Work TraceAnalyzer::ServiceAt(uint32_t node, Time t) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.timeline.empty()) {
    return 0;
  }
  const auto& tl = it->second.timeline;
  // Last point with time <= t.
  const auto pos = std::upper_bound(
      tl.begin(), tl.end(), t,
      [](Time value, const std::pair<Time, Work>& p) { return value < p.first; });
  if (pos == tl.begin()) {
    return 0;
  }
  return std::prev(pos)->second;
}

double TraceAnalyzer::FairnessGap(uint32_t f, uint32_t g, Time t0, Time t1) const {
  const auto fi = nodes_.find(f);
  const auto gi = nodes_.find(g);
  if (fi == nodes_.end() || gi == nodes_.end()) {
    return 0.0;
  }
  const double wf = static_cast<double>(fi->second.weight);
  const double wg = static_cast<double>(gi->second.weight);
  const double sf = static_cast<double>(ServiceIn(f, t0, t1));
  const double sg = static_cast<double>(ServiceIn(g, t0, t1));
  const double gap = sf / wf - sg / wg;
  return gap < 0 ? -gap : gap;
}

std::vector<TraceAnalyzer::CpuStats> TraceAnalyzer::PerCpuStats() const {
  std::map<int, CpuStats> by_cpu;
  for (int c = 0; c < cpus_; ++c) {
    by_cpu[c].cpu = c;
  }
  const auto at = [&by_cpu](uint16_t cpu) -> CpuStats& {
    CpuStats& s = by_cpu[cpu];
    s.cpu = cpu;
    return s;
  };
  for (const TraceEvent& e : events_) {
    switch (e.type) {
      case EventType::kSchedule:
        ++at(e.cpu).dispatches;
        break;
      case EventType::kUpdate:
        at(e.cpu).busy += e.b;
        break;
      case EventType::kIdle:
        at(e.cpu).idle += e.b;
        break;
      case EventType::kMigrate:
        if ((e.flags & 1u) != 0) {
          ++at(e.cpu).steals;
        } else {
          ++at(e.cpu).rebalances;
        }
        break;
      default:
        break;
    }
  }
  std::vector<CpuStats> out;
  out.reserve(by_cpu.size());
  for (auto& [cpu, s] : by_cpu) {
    const double active = static_cast<double>(s.busy) + static_cast<double>(s.idle);
    s.utilization = active > 0 ? static_cast<double>(s.busy) / active : 1.0;
    out.push_back(s);
  }
  return out;
}

std::vector<TraceAnalyzer::LeafRtStats> TraceAnalyzer::PerLeafRtStats() const {
  std::map<uint32_t, LeafRtStats> by_leaf;
  const auto at = [&by_leaf](uint32_t leaf) -> LeafRtStats& {
    LeafRtStats& s = by_leaf[leaf];
    s.leaf = leaf;
    return s;
  };
  for (const TraceEvent& e : events_) {
    switch (e.type) {
      case EventType::kSetRun:
        ++at(e.node).releases;
        break;
      case EventType::kDeadlineMiss: {
        LeafRtStats& s = at(e.node);
        ++s.misses;
        s.tardiness.push_back(e.b);
        break;
      }
      case EventType::kAdmit:
        if ((e.flags & 1u) != 0) {
          ++at(e.node).admits_accepted;
        } else {
          ++at(e.node).admits_rejected;
        }
        break;
      default:
        break;
    }
  }
  std::vector<LeafRtStats> out;
  out.reserve(by_leaf.size());
  for (auto& [leaf, s] : by_leaf) {
    std::sort(s.tardiness.begin(), s.tardiness.end());
    const uint64_t denom = std::max(s.releases, s.misses);
    s.miss_rate =
        denom > 0 ? static_cast<double>(s.misses) / static_cast<double>(denom) : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TraceAnalyzer::GovernorAction> TraceAnalyzer::GovernorActions() const {
  std::vector<GovernorAction> out;
  for (const TraceEvent& e : events_) {
    if (e.type != EventType::kGovern) continue;
    GovernorAction a;
    a.time = e.time;
    a.action = static_cast<GovernAction>(e.flags);
    a.node = e.node;
    a.arg = e.a;
    a.magnitude = e.b;
    a.name = e.name;
    out.push_back(std::move(a));
  }
  return out;
}

Time TraceAnalyzer::Percentile(const std::vector<Time>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  // !(p > 0) also catches NaN, which would otherwise reach the float->size_t cast
  // below (undefined behavior). A non-positive or unordered percent asks for the
  // distribution's floor.
  if (!(p > 0.0)) {
    return sorted.front();
  }
  // p at or beyond 100 (including +inf) is the maximum; guarding here keeps the rank
  // arithmetic finite.
  if (p >= 100.0) {
    return sorted.back();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) < rank) {
    ++idx;  // ceil
  }
  if (idx == 0) {
    idx = 1;
  }
  if (idx > sorted.size()) {
    idx = sorted.size();
  }
  return sorted[idx - 1];
}

std::vector<Time> TraceAnalyzer::DispatchLatencies(uint64_t thread) const {
  std::vector<Time> out;
  Time pending_wake = -1;
  for (const TraceEvent& e : events_) {
    if (e.type == EventType::kSetRun && e.a == thread) {
      pending_wake = e.time;
    } else if (e.type == EventType::kSchedule && e.a == thread && pending_wake >= 0) {
      out.push_back(e.time - pending_wake);
      pending_wake = -1;
    }
  }
  return out;
}

std::vector<TraceAnalyzer::ThreadActivity> TraceAnalyzer::ThreadActivities() const {
  std::map<uint64_t, ThreadActivity> acts;
  // Open episode per thread: woke at `wake`, `acc` service charged so far.
  struct Open {
    bool open = false;
    Time wake = 0;
    Work acc = 0;
  };
  std::map<uint64_t, Open> open;

  const auto activity = [&](uint64_t thread) -> ThreadActivity& {
    auto it = acts.find(thread);
    if (it == acts.end()) {
      ThreadActivity a;
      a.thread = thread;
      it = acts.emplace(thread, std::move(a)).first;
    }
    return it->second;
  };
  const auto close = [&](uint64_t thread, Time at, bool complete) {
    Open& o = open[thread];
    if (!o.open) {
      return;
    }
    activity(thread).bursts.push_back(
        ThreadBurst{o.wake, at, o.acc, complete});
    o = Open{};
  };

  for (const TraceEvent& e : events_) {
    switch (e.type) {
      case EventType::kAttachThread: {
        ThreadActivity& a = activity(e.a);
        if (!a.attached) {
          a.attached = true;
          a.attach_time = e.time;
          a.leaf = e.node;
          a.weight = static_cast<uint64_t>(e.b);
        }
        break;
      }
      case EventType::kThreadName:
        activity(e.a).name = NameField(e);
        break;
      case EventType::kSetRun: {
        ThreadActivity& a = activity(e.a);
        if (a.leaf == UINT32_MAX) {
          a.leaf = e.node;  // truncated trace: no attach was recorded
        }
        Open& o = open[e.a];
        if (!o.open) {
          o.open = true;
          o.wake = e.time;
          o.acc = 0;
        }
        break;
      }
      case EventType::kUpdate: {
        ThreadActivity& a = activity(e.a);
        if (a.leaf == UINT32_MAX) {
          a.leaf = e.node;
        }
        Open& o = open[e.a];
        if (!o.open) {
          // Truncated stream: the wake predates the ring. Anchor the episode at the
          // first charge we can see.
          o.open = true;
          o.wake = e.time;
        }
        o.acc += e.b;
        if (e.flags == 0) {
          close(e.a, e.time, /*complete=*/true);
        }
        break;
      }
      case EventType::kSleep:
        // External suspend of a runnable-but-not-running thread closes the episode.
        close(e.a, e.time, /*complete=*/true);
        break;
      case EventType::kDetachThread:
        close(e.a, e.time, /*complete=*/true);
        break;
      default:
        break;
    }
  }

  std::vector<ThreadActivity> out;
  out.reserve(acts.size());
  for (auto& [thread, a] : acts) {
    const Open& o = open[thread];
    if (o.open) {
      // Cut off at the horizon: the final burst is a lower bound on the source burst.
      a.bursts.push_back(ThreadBurst{o.wake, last_time_, o.acc, /*complete=*/false});
      a.ends_blocked = false;
    } else {
      a.ends_blocked = !a.bursts.empty();
    }
    out.push_back(std::move(a));
  }
  return out;
}

std::string TraceAnalyzer::ThreadName(uint64_t thread) const {
  const auto it = thread_names_.find(thread);
  return it == thread_names_.end() ? "" : it->second;
}

}  // namespace htrace
