#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>

namespace htrace {

using hscommon::InvalidArgument;
using hscommon::Status;
using hscommon::StatusOr;

namespace {

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t event_size;
  uint64_t event_count;
  uint64_t dropped;
};
static_assert(sizeof(Header) == 32);

}  // namespace

Status WriteTraceFile(const std::vector<TraceEvent>& events, uint64_t dropped,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgument("cannot open '" + path + "' for writing");
  }
  Header h;
  std::memcpy(h.magic, kTraceMagic, sizeof(h.magic));
  h.version = kTraceVersion;
  h.event_size = sizeof(TraceEvent);
  h.event_count = events.size();
  h.dropped = dropped;
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  if (ok && !events.empty()) {
    ok = std::fwrite(events.data(), sizeof(TraceEvent), events.size(), f) == events.size();
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    return InvalidArgument("short write to '" + path + "'");
  }
  return Status::Ok();
}

Status WriteTraceFile(const Tracer& tracer, const std::string& path) {
  return WriteTraceFile(tracer.MergedSnapshot(), tracer.TotalDropped(), path);
}

StatusOr<TraceFile> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return InvalidArgument("cannot open '" + path + "' for reading");
  }
  Header h;
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    return InvalidArgument("'" + path + "' is too short to be a trace");
  }
  if (std::memcmp(h.magic, kTraceMagic, sizeof(h.magic)) != 0) {
    std::fclose(f);
    return InvalidArgument("'" + path + "' has no HSTRACE1 magic");
  }
  if (h.version != kTraceVersion || h.event_size != sizeof(TraceEvent)) {
    std::fclose(f);
    return InvalidArgument("'" + path + "' has an unsupported version or record size");
  }
  TraceFile out;
  out.dropped = h.dropped;
  out.events.resize(h.event_count);
  const size_t read =
      h.event_count == 0
          ? 0
          : std::fread(out.events.data(), sizeof(TraceEvent), h.event_count, f);
  std::fclose(f);
  if (read != h.event_count) {
    return InvalidArgument("'" + path + "' is truncated: header promises " +
                           std::to_string(h.event_count) + " events, file holds " +
                           std::to_string(read));
  }
  return out;
}

}  // namespace htrace
