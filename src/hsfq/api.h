// The paper's system-call interface (§4), verbatim names, layered over
// SchedulingStructure. Each call returns a node id (>= 0) or a negative errno-style code.
//
//   int hsfq_mknod(char* name, int parent, int weight, int flag, scheduler_id sid)
//   int hsfq_parse(char* name, int hint)
//   int hsfq_rmnod(int id, int mode)
//   int hsfq_move(int from, int to, ...)
//   int hsfq_admin(int node, int cmd, void* args)
//
// The `sid` registry maps small integers to leaf-scheduler factories so callers can
// instantiate schedulers by id exactly as the Solaris implementation installed scheduling-
// class function pointers.

#ifndef HSCHED_SRC_HSFQ_API_H_
#define HSCHED_SRC_HSFQ_API_H_

#include <functional>
#include <memory>

#include "src/hsfq/structure.h"

namespace hsfq {

// Error codes (negative, so ids and errors share the int return).
inline constexpr int kErrInval = -1;    // invalid argument
inline constexpr int kErrNoEnt = -2;    // no such node/thread
inline constexpr int kErrExist = -3;    // duplicate name
inline constexpr int kErrBusy = -4;     // node busy (children/threads/in service)
inline constexpr int kErrNoSched = -5;  // unknown scheduler id
inline constexpr int kErrAgain = -6;    // admission control rejected

// Node-type flag for hsfq_mknod.
inline constexpr int kNodeLeaf = 1;
inline constexpr int kNodeInterior = 0;

// Identifies a registered leaf-scheduler class.
using SchedulerId = int;

// hsfq_admin commands.
enum class AdminCmd {
  kSetWeight,   // args: const Weight*
  kGetWeight,   // args: Weight* (out)
  kGetPath,     // args: std::string* (out)
  kGetService,  // args: Work* (out) — cumulative CPU service of the subtree
  kAdmit,       // args: AdmitArgs* — admission probe against the leaf's class scheduler
  kRevoke,      // args: RevokeArgs* — void the leaf's admission guarantees (governor)
};

// Arguments of AdminCmd::kAdmit — the paper's admission-control op. A non-mutating
// probe: asks the leaf's class scheduler whether a thread with `params` would be
// admitted (EDF utilization test, RMA Liu–Layland / response-time analysis; always yes
// for classes without admission control). Returns 0 when admissible, kErrAgain when the
// class's schedulability test rejects, kErrInval for malformed params. Either way a
// kAdmit trace event records the verdict and the leaf's would-be utilization.
struct AdmitArgs {
  ThreadParams params;
  // Thread id the caller would attach under (a label for the trace; kInvalidThread ok).
  ThreadId thread = kInvalidThread;
  // Trace timestamp of the probe.
  Time now = 0;
};

// Arguments of AdminCmd::kRevoke — the overload governor's degradation verb. Voids the
// leaf's admission guarantees (the class scheduler stops reporting booked utilization
// and rejects further admissions; attached threads keep running) and records a kGovern
// "revoke" trace event. Returns 0 on success; a node id that is not a live leaf is
// kErrInval — admin verbs take raw ids from outside the kernel, so a stale id is a
// caller bug, never an assert.
struct RevokeArgs {
  // Trace timestamp of the revocation.
  Time now = 0;
};

// A kernel instance: one scheduling structure plus the scheduler-class registry.
class HsfqApi {
 public:
  HsfqApi();

  // Registers a leaf-scheduler factory under `sid`; replaces any previous registration.
  void RegisterScheduler(SchedulerId sid,
                         std::function<std::unique_ptr<LeafScheduler>()> factory);

  // Fault injection (src/fault): when set, `hook(op)` is consulted on entry to
  // hsfq_mknod ("mknod") and hsfq_move ("move"); returning true makes the call fail
  // transiently with kErrAgain before touching the structure — the kernel-under-memory-
  // pressure model. Callers are expected to treat kErrAgain as retryable. Pass nullptr
  // to remove.
  void SetFaultHook(std::function<bool(const char* op)> hook) {
    fault_hook_ = std::move(hook);
  }

  // The system calls. Return node id or a negative error code.
  int hsfq_mknod(const char* name, int parent, int weight, int flag, SchedulerId sid);
  int hsfq_parse(const char* name, int hint);
  int hsfq_rmnod(int id, int mode);
  int hsfq_move(ThreadId thread, int to, const ThreadParams& params, Time now);
  // hsfq_move of a whole node (the paper's other move form): re-attaches `node` and its
  // subtree under interior node `to`, re-normalizing its SFQ start tag against the
  // destination's virtual time (§4). Consults the same "move" fault hook.
  int hsfq_move(int node, int to, Time now);
  int hsfq_admin(int node, AdminCmd cmd, void* args);

  // The underlying structure, for attaching threads and driving dispatch.
  SchedulingStructure& structure() { return structure_; }
  const SchedulingStructure& structure() const { return structure_; }

 private:
  static int ToError(const hscommon::Status& status);

  SchedulingStructure structure_;
  std::unordered_map<SchedulerId, std::function<std::unique_ptr<LeafScheduler>()>>
      factories_;
  std::function<bool(const char* op)> fault_hook_;
};

}  // namespace hsfq

#endif  // HSCHED_SRC_HSFQ_API_H_
