// The leaf-class scheduler plug-in contract (paper §4).
//
// A leaf node of the scheduling structure aggregates threads of one application class and
// owns a LeafScheduler chosen for that class (SFQ, SVR4 time-sharing, EDF, RMA, ...).
// The paper's contract: a leaf scheduler must (1) provide a function hsfq_schedule() can
// invoke to select the next thread, and (2) drive hsfq_setrun / hsfq_sleep / hsfq_update.
// In this library the direction of (2) is inverted without loss of generality: the
// embedding system calls SchedulingStructure::SetRun/Update, and the structure forwards
// the per-thread transitions to the leaf scheduler through this interface.

#ifndef HSCHED_SRC_HSFQ_LEAF_SCHEDULER_H_
#define HSCHED_SRC_HSFQ_LEAF_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"

namespace hsfq {

using hscommon::Time;
using hscommon::Weight;
using hscommon::Work;

// Identifies a thread. Thread objects are owned by the embedding system (the simulator or
// the user-level runtime); schedulers only track ids.
using ThreadId = uint64_t;
inline constexpr ThreadId kInvalidThread = UINT64_MAX;

// Scheduler-class-specific parameters supplied when a thread joins a leaf.
struct ThreadParams {
  // Proportional-share leaves (SFQ, Stride, Lottery): relative share.
  Weight weight = 1;
  // SVR4 time-sharing leaf: initial user priority (0 = lowest .. 59 = highest).
  int priority = 29;
  // Real-time leaves (EDF, RMA): period, per-period computation, relative deadline
  // (0 means "equal to the period").
  Time period = 0;
  Work computation = 0;
  Time relative_deadline = 0;
};

// Interface every leaf-class scheduler implements.
class LeafScheduler {
 public:
  virtual ~LeafScheduler() = default;

  // Registers a thread (initially not runnable). Fails if the class's admission control
  // rejects the parameters (e.g. an RMA leaf past the Liu–Layland bound).
  virtual hscommon::Status AddThread(ThreadId thread, const ThreadParams& params) = 0;

  // Non-mutating admission preflight (the paper's hsfq_admin query): would a thread
  // with these parameters be admitted right now? Classes without admission control
  // accept everything; admission-controlled classes (src/rt) run the same validation
  // and schedulability test AddThread would, without booking anything.
  virtual hscommon::Status AdmitQuery(const ThreadParams& params) const {
    (void)params;
    return hscommon::Status::Ok();
  }

  // True if AddThread can reject for capacity (an admission-controlled class).
  virtual bool HasAdmissionControl() const { return false; }

  // Revokes every admission guarantee this class has issued (the hsfq_admin kRevoke
  // verb, driven by the overload governor when it demotes a miss-storming leaf): the
  // class stops reporting booked utilization and rejects all further admission
  // requests. Attached threads stay schedulable and internal accounting keeps
  // tracking them — revocation voids the guarantee, it does not evict. No-op for
  // classes without admission control.
  virtual void RevokeAdmissions() {}

  // Booked CPU utilization sum(C_i / T_i) of admitted threads; 0 for classes that do
  // not meter utilization.
  virtual double BookedUtilization() const { return 0.0; }

  // Unregisters a thread that is not currently running on the CPU.
  virtual void RemoveThread(ThreadId thread) = 0;

  // Adjusts a thread's parameters (e.g. its SFQ weight — Figure 11).
  virtual hscommon::Status SetThreadParams(ThreadId thread, const ThreadParams& params) = 0;

  // The thread transitioned blocked -> runnable at `now`.
  virtual void ThreadRunnable(ThreadId thread, Time now) = 0;

  // A runnable-but-not-running thread was suspended at `now` (a running thread blocks via
  // Charge(..., still_runnable=false) instead).
  virtual void ThreadBlocked(ThreadId thread, Time now) = 0;

  // Selects the next thread to run; the thread is considered "in service" until Charge.
  // Returns kInvalidThread when no thread is runnable.
  virtual ThreadId PickNext(Time now) = 0;

  // The in-service thread consumed `used` nanoseconds of CPU; it either remains runnable
  // or has blocked.
  virtual void Charge(ThreadId thread, Work used, Time now, bool still_runnable) = 0;

  // True if any thread is runnable (including one in service).
  virtual bool HasRunnable() const = 0;

  // True if the scheduler could serve one MORE CPU right now — some thread is runnable
  // and not already on a CPU, and the class can handle another concurrent pick. The SMP
  // dispatcher skips a leaf whose HasDispatchable() is false, so a class scheduler that
  // can only track one in-service thread MUST return false while it has one (the
  // default below is only correct for schedulers whose PickNext tolerates being called
  // again before Charge). On a single CPU this is never consulted mid-service and
  // degenerates to HasRunnable().
  virtual bool HasDispatchable() const { return HasRunnable(); }

  // True if the given thread is currently runnable (queued or in service).
  virtual bool IsThreadRunnable(ThreadId thread) const = 0;

  // Suggested quantum for the given thread; the dispatcher may clip it. Returning 0 means
  // "use the system default".
  virtual Work PreferredQuantum(ThreadId /*thread*/) const { return 0; }

  // --- Optional priority-inversion remedy hooks (paper §4) ---
  //
  // Invoked by the embedding system when `waiter` blocks on a resource held by `holder`
  // and both belong to THIS class (the paper deems cross-class synchronization
  // undesirable and leaves it un-remedied). Default: no remedy.
  // SFQ leaves transfer the waiter's weight to the holder; RMA leaves apply classic
  // priority inheritance.
  virtual void OnResourceBlocked(ThreadId holder, ThreadId waiter) {
    (void)holder;
    (void)waiter;
  }
  // The holder released the resource (or ownership moved): undo the remedy for `waiter`.
  virtual void OnResourceReleased(ThreadId holder, ThreadId waiter) {
    (void)holder;
    (void)waiter;
  }

  virtual std::string Name() const = 0;
};

}  // namespace hsfq

#endif  // HSCHED_SRC_HSFQ_LEAF_SCHEDULER_H_
