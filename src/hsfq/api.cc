#include "src/hsfq/api.h"

namespace hsfq {

HsfqApi::HsfqApi() = default;

void HsfqApi::RegisterScheduler(SchedulerId sid,
                                std::function<std::unique_ptr<LeafScheduler>()> factory) {
  factories_[sid] = std::move(factory);
}

int HsfqApi::ToError(const hscommon::Status& status) {
  switch (status.code()) {
    case hscommon::StatusCode::kOk:
      return 0;
    case hscommon::StatusCode::kInvalidArgument:
      return kErrInval;
    case hscommon::StatusCode::kNotFound:
      return kErrNoEnt;
    case hscommon::StatusCode::kAlreadyExists:
      return kErrExist;
    case hscommon::StatusCode::kFailedPrecondition:
      return kErrBusy;
    case hscommon::StatusCode::kResourceExhausted:
      return kErrAgain;
    case hscommon::StatusCode::kInternal:
      return kErrInval;
  }
  return kErrInval;
}

int HsfqApi::hsfq_mknod(const char* name, int parent, int weight, int flag, SchedulerId sid) {
  if (name == nullptr || parent < 0 || weight < 1) {
    return kErrInval;
  }
  if (fault_hook_ && fault_hook_("mknod")) {
    return kErrAgain;  // injected transient failure; retryable
  }
  std::unique_ptr<LeafScheduler> leaf;
  if (flag == kNodeLeaf) {
    const auto it = factories_.find(sid);
    if (it == factories_.end()) {
      return kErrNoSched;
    }
    leaf = it->second();
  } else if (flag != kNodeInterior) {
    return kErrInval;
  }
  auto result = structure_.MakeNode(name, static_cast<NodeId>(parent),
                                    static_cast<Weight>(weight), std::move(leaf));
  if (!result.ok()) {
    return ToError(result.status());
  }
  return static_cast<int>(*result);
}

int HsfqApi::hsfq_parse(const char* name, int hint) {
  if (name == nullptr || hint < 0) {
    return kErrInval;
  }
  auto result = structure_.Parse(name, static_cast<NodeId>(hint));
  if (!result.ok()) {
    return ToError(result.status());
  }
  return static_cast<int>(*result);
}

int HsfqApi::hsfq_rmnod(int id, int /*mode*/) {
  if (id < 0) {
    return kErrInval;
  }
  return ToError(structure_.RemoveNode(static_cast<NodeId>(id)));
}

int HsfqApi::hsfq_move(ThreadId thread, int to, const ThreadParams& params, Time now) {
  if (to < 0) {
    return kErrInval;
  }
  if (fault_hook_ && fault_hook_("move")) {
    return kErrAgain;  // injected transient failure; retryable
  }
  return ToError(structure_.MoveThread(thread, static_cast<NodeId>(to), params, now));
}

int HsfqApi::hsfq_move(int node, int to, Time now) {
  if (node < 0 || to < 0) {
    return kErrInval;
  }
  if (fault_hook_ && fault_hook_("move")) {
    return kErrAgain;  // injected transient failure; retryable
  }
  return ToError(structure_.MoveNode(static_cast<NodeId>(node), static_cast<NodeId>(to), now));
}

int HsfqApi::hsfq_admin(int node, AdminCmd cmd, void* args) {
  if (node < 0 || args == nullptr) {
    return kErrInval;
  }
  const auto id = static_cast<NodeId>(node);
  switch (cmd) {
    case AdminCmd::kSetWeight:
      return ToError(structure_.SetNodeWeight(id, *static_cast<const Weight*>(args)));
    case AdminCmd::kGetWeight: {
      auto w = structure_.GetNodeWeight(id);
      if (!w.ok()) {
        return ToError(w.status());
      }
      *static_cast<Weight*>(args) = *w;
      return 0;
    }
    case AdminCmd::kGetPath: {
      // Validate the id via GetNodeWeight before calling PathOf (which asserts liveness).
      auto w = structure_.GetNodeWeight(id);
      if (!w.ok()) {
        return ToError(w.status());
      }
      *static_cast<std::string*>(args) = structure_.PathOf(id);
      return 0;
    }
    case AdminCmd::kGetService: {
      auto service = structure_.ServiceOf(id);
      if (!service.ok()) {
        return ToError(service.status());
      }
      *static_cast<Work*>(args) = *service;
      return 0;
    }
    case AdminCmd::kAdmit: {
      const auto* admit = static_cast<const AdmitArgs*>(args);
      return ToError(structure_.AdmitThread(admit->thread, id, admit->params, admit->now));
    }
    case AdminCmd::kRevoke: {
      const auto* revoke = static_cast<const RevokeArgs*>(args);
      return ToError(structure_.RevokeAdmissions(id, revoke->now));
    }
  }
  return kErrInval;
}

}  // namespace hsfq
