// The scheduling structure — the paper's hierarchical CPU scheduling framework (§2, §4).
//
// A tree of weighted nodes. Interior nodes schedule their children with SFQ; each leaf
// node owns a pluggable class scheduler over its threads. Scheduling descends from the
// root picking the child with the minimum start tag until a leaf selects a thread
// (hsfq_schedule); when the thread stops running, the consumed service is charged to the
// leaf and every ancestor (hsfq_update). Runnability propagates up on wakeup
// (hsfq_setrun) and down-to-idle on sleep (hsfq_sleep).
//
// Node naming follows the paper: every node has a UNIX-filename-like path such as
// "/best-effort/user1", resolvable absolutely or relative to a hint node (hsfq_parse).
//
// Storage layout (million-leaf scale): nodes live in a generation-indexed arena of two
// parallel arrays. The HOT array packs exactly the fields the dispatch walks touch —
// parent link, flow id, SFQ/leaf scheduler pointers, weight, runnability, service
// counters — so a root-to-leaf descent reads a handful of packed cache lines no matter
// how much admin state the tree carries. The COLD array holds everything only admin
// operations need: names (interned in a pool, so lookups compare 32-bit ids instead of
// strings), the child-name index, child lists, and the owning smart pointers whose raw
// mirrors the hot array carries. A NodeId is the arena slot index — ids are dense,
// recycled lowest-first, and stable for the lifetime of the node — and each slot carries
// a generation counter so callers holding a NodeHandle can detect recycled ids.

#ifndef HSCHED_SRC_HSFQ_STRUCTURE_H_
#define HSCHED_SRC_HSFQ_STRUCTURE_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/fair/sfq.h"
#include "src/hsfq/leaf_scheduler.h"
#include "src/trace/tracer.h"

namespace hsfq {

using hscommon::Status;
using hscommon::StatusOr;

// Identifies a node in one SchedulingStructure: the node's arena slot index. Slot
// indices are recycled after RemoveNode (lowest free index first, so the live id range
// stays dense under churn); a NodeId alone cannot distinguish a node from a later node
// reusing its slot — callers that cache ids across removals use NodeHandle.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;
// The root always exists and has id 0.
inline constexpr NodeId kRootNode = 0;

// A NodeId paired with the slot's generation at capture time: IsCurrent() tells a
// caller whether the id still names the same node or the slot has been recycled.
struct NodeHandle {
  NodeId id = kInvalidNode;
  uint32_t generation = 0;
};

class SchedulingStructure {
 public:
  SchedulingStructure();
  ~SchedulingStructure();

  SchedulingStructure(const SchedulingStructure&) = delete;
  SchedulingStructure& operator=(const SchedulingStructure&) = delete;

  // --- Structure management (the paper's system calls) ---

  // hsfq_mknod: creates a node named `name` (one path component, no '/') as a child of
  // `parent` with the given weight. Passing a scheduler makes it a leaf; nullptr makes it
  // an interior node. Fails on duplicate names, zero weight, or a leaf parent.
  StatusOr<NodeId> MakeNode(const std::string& name, NodeId parent, Weight weight,
                            std::unique_ptr<LeafScheduler> leaf_scheduler);

  // hsfq_parse: resolves "/abs/path" or "relative/path" (relative to `hint`) to a node.
  // Allocation-free: components are matched as string_views against the interned name
  // pool, and child lookup is an integer probe, not a string compare.
  StatusOr<NodeId> Parse(const std::string& path, NodeId hint = kRootNode) const;

  // hsfq_rmnod: removes a node with no children and no threads. The root is not removable.
  Status RemoveNode(NodeId node);

  // hsfq_move: moves a (non-running) thread to another leaf node, preserving its
  // runnability across the move.
  Status MoveThread(ThreadId thread, NodeId to, const ThreadParams& params, Time now);

  // hsfq_move of a whole class: re-attaches `node` (and its subtree) under the interior
  // node `to`, preserving runnability. The node's SFQ tags are re-normalized against the
  // destination parent's virtual time (paper §4 re-attachment rule): it joins as a fresh
  // flow, so its next arrival stamps S = v_dest instead of carrying a stale tag from the
  // (possibly much busier or idler) source parent. Fails when `node` is the root, on a
  // dispatched path, a descendant cycle would form, `to` is a leaf, or a sibling of the
  // same name exists.
  Status MoveNode(NodeId node, NodeId to, Time now);

  // hsfq_admin operations.
  Status SetNodeWeight(NodeId node, Weight weight);
  StatusOr<Weight> GetNodeWeight(NodeId node) const;
  Status SetThreadParams(ThreadId thread, const ThreadParams& params);

  // --- Thread membership ---

  // Adds a thread (initially blocked) to a leaf node. kInvalidThread is not a valid
  // thread id.
  Status AttachThread(ThreadId thread, NodeId leaf, const ThreadParams& params);

  // Non-mutating admission probe (the paper's hsfq_admin admission op): asks the leaf's
  // class scheduler whether a thread with `params` would be admitted, without attaching
  // anything. Emits a kAdmit trace event either way, carrying the leaf's would-be
  // utilization (booked + requested, ppm) and the verdict. `thread` is only a label for
  // the trace (the id the caller would attach under); kInvalidThread is fine.
  Status AdmitThread(ThreadId thread, NodeId leaf, const ThreadParams& params, Time now);

  // Revokes the leaf's admission guarantees (the hsfq_admin kRevoke verb): the class
  // scheduler stops reporting booked utilization and rejects further admissions;
  // attached threads keep running. Emits a kGovern "revoke" trace event carrying the
  // booked utilization (ppm) that was voided. Like AdmitThread, an id that is not a
  // live leaf is InvalidArgument — admin verbs take raw ids from outside the kernel,
  // so a stale id is a caller bug, not a lookup miss.
  Status RevokeAdmissions(NodeId leaf, Time now);

  // Removes a thread that is not currently running.
  Status DetachThread(ThreadId thread);

  // --- Kernel hooks ---

  // hsfq_setrun: `thread` became runnable at `now`.
  void SetRun(ThreadId thread, Time now);

  // hsfq_sleep: a runnable-but-not-running `thread` was suspended at `now`. (A *running*
  // thread blocks by passing still_runnable=false to Update instead.)
  void Sleep(ThreadId thread, Time now);

  // hsfq_schedule: walks the tree and returns the thread to run, or kInvalidThread when
  // nothing is dispatchable. The returned thread stays "in service" until Update. On an
  // SMP system each CPU calls this independently on the shared structure with its own
  // `cpu` id (for trace attribution): a picked entity is marked on-cpu and skipped by
  // the other CPUs' descents, so the same thread is never double-dispatched.
  ThreadId Schedule(Time now, int cpu = 0);

  // hsfq_update: the in-service thread consumed `used` nanoseconds; charges the leaf
  // scheduler and the SFQ tags of every ancestor. `still_runnable=false` means the thread
  // blocked or exited. `cpu` must match the Schedule that dispatched the thread.
  void Update(ThreadId thread, Work used, Time now, bool still_runnable, int cpu = 0);

  // Sharded-dispatch fast path: commits a dispatch of a SPECIFIC leaf chosen
  // externally (the per-CPU shard heaps of src/sim), touching NO interior SFQ state.
  // The shard key already carries the hierarchical fairness decision (per-leaf
  // virtual time over EffectiveShare), so per-level flow selection, tag surgery, and
  // PickChild events are all skipped: the path is only marked in service (for the
  // Move/Remove guards and runnability bookkeeping), the leaf scheduler picks the
  // thread, and a Schedule event is recorded. The returned thread is released with
  // the ordinary Update, which detects the fast dispatch and charges service and
  // runnability without per-level SFQ completion. O(depth) pointer chases per call,
  // independent of the number of sibling classes. While fast dispatches are
  // outstanding a running child's flow stays in its parent's ready set, so
  // ScheduleLeaf and Schedule must not be interleaved on one structure. Returns
  // kInvalidThread when the leaf has no dispatchable thread. When
  // `still_dispatchable` is non-null it receives whether the leaf has further
  // dispatchable threads AFTER this pick (saving the caller a separate
  // LeafDispatchable query on the hot dispatch path).
  ThreadId ScheduleLeaf(NodeId leaf, Time now, int cpu = 0,
                        bool* still_dispatchable = nullptr);

  // True if `node` is a live leaf whose scheduler has a runnable thread not on a CPU.
  bool LeafDispatchable(NodeId node) const;

  // All live leaves with dispatchable work, ascending id order. The shard layer's
  // resync sweep; O(total nodes), not for the dispatch hot path.
  std::vector<NodeId> DispatchableLeaves() const;

  // The leaf's hierarchical share of the machine: the product over its path of
  // weight / (sum of runnable siblings' weights), counting the leaf's own chain as
  // runnable even when it currently is not. This is the rate the paper's §2 hierarchy
  // delivers to the leaf while every counted class stays backlogged; the sharded
  // dispatcher uses it to price shard-local virtual time. O(depth * fanout).
  double EffectiveShare(NodeId leaf) const;

  // Monotone counter bumped whenever EffectiveShare's inputs may have changed (a
  // node's runnable flag flips, weights or topology change). Callers cache shares
  // and recompute on a generation mismatch.
  uint64_t StateGeneration() const { return state_gen_; }

  // --- Dispatchability change log (sharded-dispatch reconciliation) ---
  //
  // The structure keeps a bounded log of leaves whose dispatchability MAY have
  // changed — every SetRun / Sleep / Update / AttachThread / DetachThread logs
  // the touched leaf. A sharded dispatcher drains it each scheduling round and
  // reconciles only those leaves instead of sweeping every node: the sweep that was
  // O(total leaves) per wakeup becomes O(leaves actually touched), which is what
  // makes dispatch over 10^5-leaf trees tractable.
  //
  // The log is DEDUPED per drain round, keyed by leaf slot: a 10k-thread wakeup
  // storm concentrated on k leaves appends k entries, not 10k — the per-tick
  // pending set behind batched wakeups. Dedup keeps the FIRST occurrence of each
  // leaf, so the drained order equals the order dispatchability changes first
  // touched each leaf; since reconciliation of one leaf is idempotent within a
  // round (the tree does not move during a drain), processing the deduped log is
  // observably identical to processing every duplicate.
  //
  // Structural changes (MakeNode / RemoveNode / MoveNode / SetNodeWeight) no longer
  // poison the whole log: they poison only the TOP-LEVEL SUBTREE (the tenant — the
  // root child the node lives under), and the drain hands back the poisoned subtree
  // roots so the consumer can run a subtree-scoped sweep instead of a global one.
  // Only root-level structural ops and log overflow still force the full sweep — so
  // a consumer that never drains (single-CPU, non-sharded) pays at most the fixed
  // cap and then nothing.

  // True when the log holds entries or poison since the last drain.
  bool DispatchDirtyPending() const {
    return dirty_overflow_ || !dirty_leaves_.empty() || !dirty_subtrees_.empty();
  }

  // Appends the deduped logged leaves to `leaves` and the poisoned top-level
  // subtree roots to `poisoned` (when non-null), then clears the log. Returns true
  // unless the log was GLOBALLY poisoned (root-level structural change or
  // overflow), in which case nothing is appended and the caller must reconcile
  // with a full sweep. A poisoned subtree root may name a node that has since been
  // removed (or its slot recycled) — consumers must validate liveness and treat a
  // dead root as "nothing left to sweep" (a removed node had no threads, so its
  // detach entries already cover it). Entries may name leaves whose dispatchability
  // did not actually change; reconciliation is idempotent per leaf. Const: the log
  // is an observer channel (the dispatcher holds the tree const), not scheduling
  // state.
  bool DrainDispatchDirty(std::vector<NodeId>* leaves,
                          std::vector<NodeId>* poisoned) const;

  // Legacy single-vector drain: identical, but reports ANY poison (global or
  // subtree-scoped) as incomplete, for consumers that cannot scope a sweep.
  bool DrainDispatchDirty(std::vector<NodeId>* out) const;

  // The top-level subtree `node` lives under: the root child on its ancestor path
  // (itself when node is a root child), kRootNode for the root itself. O(1) — the
  // arena caches it per node and maintains it across MoveNode.
  NodeId SubtreeRootOf(NodeId node) const { return hot_[node].subtree; }

  // Appends every live leaf in the subtree rooted at `node` (inclusive) to `out`.
  // A dead or invalid `node` appends nothing. O(subtree size).
  void LeavesUnder(NodeId node, std::vector<NodeId>* out) const;

  // Dirty-log telemetry: kernel-hook log calls vs entries actually appended after
  // dedup. The gap is the wakeup-storm batching win (appends/marks is the dedup
  // ratio a storm benchmark gates on).
  uint64_t DirtyMarkCount() const { return dirty_marks_; }
  uint64_t DirtyAppendCount() const { return dirty_appends_; }

  // --- Introspection ---

  // True if any thread anywhere in the tree is runnable.
  bool HasRunnable() const;

  // True if some runnable thread is not currently on a CPU — i.e. an idle CPU calling
  // Schedule would receive a thread. Distinct from HasRunnable() only while another
  // CPU holds a dispatch (between its Schedule and Update).
  bool HasDispatchable() const { return Dispatchable(kRootNode); }

  // The thread currently dispatched (between Schedule and Update), if any. With
  // multiple CPUs dispatched, the oldest outstanding dispatch.
  ThreadId RunningThread() const {
    return running_.empty() ? kInvalidThread : running_.front().thread;
  }

  // True if `thread` is currently dispatched on some CPU.
  bool IsRunning(ThreadId thread) const;

  // Number of outstanding dispatches (0 or 1 on a single CPU).
  size_t RunningCount() const { return running_.size(); }

  // Leaf node a thread belongs to.
  StatusOr<NodeId> LeafOf(ThreadId thread) const;

  // Full path name of a node ("/"-rooted).
  std::string PathOf(NodeId node) const;

  NodeId ParentOf(NodeId node) const;
  bool IsLeaf(NodeId node) const;
  std::vector<NodeId> ChildrenOf(NodeId node) const;
  size_t NodeCount() const { return node_count_; }

  // --- Arena introspection ---

  // The slot's current handle; `id` must be a live node.
  NodeHandle HandleOf(NodeId id) const {
    return NodeHandle{id, slot_gen_[id]};
  }

  // True when the handle still names the node it was captured from: the slot is live
  // and has not been recycled since.
  bool IsCurrent(NodeHandle h) const {
    return h.id < hot_.size() && hot_[h.id].in_use && slot_gen_[h.id] == h.generation;
  }

  // Arena slots allocated (live + free). Under churn at a stable population this
  // tracks the live node count, not the historical maximum — the regression tests for
  // bounded footprint pin exactly that.
  size_t SlotCount() const { return hot_.size(); }

  // Live flow-table span of an interior node's SFQ: the size its flow_to_child mirror
  // must cover. Bounded-footprint tests assert this stays proportional to the live
  // child count under attach/detach churn.
  size_t FlowSlotsOf(NodeId node) const;

  // Approximate bytes of heap owned by the structure: hot/cold arenas, per-node child
  // lists and indexes, flow mirrors, interior SFQ state, the name pool, and the thread
  // map. Excludes leaf-scheduler internals (class-specific) — this is the
  // structure-side cost the arena layout governs, and the numerator of the bytes/leaf
  // benchmark series. Machine-independent by construction (counts container
  // capacities, not allocator behavior), so CI can gate on it.
  size_t ArenaFootprintBytes() const;

  // Leaf scheduler access (for tests and quantum negotiation).
  LeafScheduler* LeafSchedulerOf(NodeId leaf) const;

  // Preferred quantum of the currently running thread's leaf scheduler (0 = default).
  Work PreferredQuantumOf(ThreadId thread) const;

  // Same, but for a caller that already knows the thread's leaf (the sharded dispatch
  // path, which picked the leaf itself): skips the thread->leaf hash lookup.
  Work PreferredQuantumAt(NodeId leaf, ThreadId thread) const {
    return hot_[leaf].leaf->PreferredQuantum(thread);
  }

  // SFQ tag introspection for an interior node's child (tests).
  hscommon::VirtualTime StartTagOf(NodeId child) const;
  hscommon::VirtualTime FinishTagOf(NodeId child) const;

  // Cumulative CPU service charged to the subtree rooted at `node` (ns). Maintained on
  // every Update along the dispatched path, so per-class throughput needs no thread
  // enumeration.
  StatusOr<Work> ServiceOf(NodeId node) const;

  // Number of Schedule / Update calls served (overhead accounting, Figure 7).
  uint64_t schedule_count() const { return schedule_count_; }
  uint64_t update_count() const { return update_count_; }

  // --- Tracing ---

  // Attaches (or detaches, with nullptr) a scheduling tracer. Every decision point —
  // SetRun/Sleep/Schedule/Update, per-level SFQ picks, and structural operations —
  // appends one fixed-size event to the tracer's preallocated ring. With no tracer the
  // taps are a single dead branch; with one attached they stay allocation-free. The
  // tracer must outlive the structure (or be detached first). Kernel-hook events carry
  // the caller's `now`; structural operations without a time parameter record time 0
  // (they matter for ordering and tree reconstruction, not for timelines).
  void SetTracer(htrace::Tracer* tracer) { tracer_ = tracer; }
  htrace::Tracer* tracer() const { return tracer_; }

  // Verifies internal invariants (tree shape, runnability consistency, hot/cold mirror
  // agreement); returns an error describing the first violation. Used by tests and
  // debug builds.
  Status CheckInvariants() const;

  // Multi-line ASCII rendering of the tree: names, weights, leaf scheduler names,
  // runnability, thread counts, and SFQ tags of runnable children. For logs and demos.
  std::string DebugString() const;

 private:
  // Fields the dispatch paths (Schedule / ScheduleLeaf / Update / SetRun / Sleep /
  // Dispatchable) touch, packed into one contiguous array so a root-to-leaf descent
  // stays within a few cache lines per level. `sfq`, `leaf`, and `flow_to_child` are
  // raw mirrors of cold-side owners, kept in sync by the cold-side mutators.
  struct HotNode {
    NodeId parent = kInvalidNode;
    hfair::FlowId flow_in_parent = hfair::kInvalidFlow;
    hfair::Sfq* sfq = nullptr;          // owned by ColdNode::sfq
    LeafScheduler* leaf = nullptr;      // owned by ColdNode::leaf
    const NodeId* flow_to_child = nullptr;  // ColdNode::flow_to_child.data()
    Weight weight = 1;
    // Top-level subtree this node lives under (root child on its path; the node
    // itself when its parent is the root; kRootNode for the root). Maintained by
    // MakeNode/MoveNode so structural churn can poison the dirty log per tenant
    // instead of globally.
    NodeId subtree = kInvalidNode;
    Work total_service = 0;  // cumulative service charged to this subtree
    // Number of dispatched root->leaf paths passing through this node (0 or 1 on a
    // single CPU; up to ncpus on SMP, where several CPUs can serve one subtree).
    uint32_t in_service_count = 0;
    bool runnable = false;  // some descendant thread is runnable
    bool in_use = false;

    bool is_leaf() const { return leaf != nullptr; }
    bool in_service() const { return in_service_count > 0; }
  };

  // Admin-only state: names, child lists and indexes, and the owning pointers behind
  // the hot mirrors. Never touched by the dispatch walks.
  struct ColdNode {
    uint32_t name_id = UINT32_MAX;  // into NamePool
    std::vector<NodeId> children;
    // Children keyed by interned name id: MakeNode/MoveNode uniqueness checks and path
    // lookups without the O(children) sibling scan — and, unlike the std::map this
    // replaces, without a per-child heap node or string compares.
    hscommon::FlatMap<uint32_t, NodeId, UINT32_MAX> child_index;
    std::vector<NodeId> flow_to_child;  // indexed by hfair::FlowId
    std::unique_ptr<hfair::Sfq> sfq;    // interior nodes
    std::unique_ptr<LeafScheduler> leaf;  // leaf nodes
    size_t thread_count = 0;  // threads attached (leaf nodes only)
  };

  // Interns path components so child indexes and lookups work on 32-bit ids. Ids are
  // never recycled: the pool is bounded by the number of DISTINCT names ever created
  // (recurring names — the common churn shape — are free), not by churn volume.
  class NamePool {
   public:
    // Id for `name`, interning on first sight (the only allocating case).
    uint32_t Intern(std::string_view name);
    // Id of an already-interned name, or UINT32_MAX. Allocation-free.
    uint32_t Lookup(std::string_view name) const;
    std::string_view NameOf(uint32_t id) const { return names_[id]; }
    size_t MemoryBytes() const { return bytes_; }

   private:
    std::deque<std::string> names_;  // deque: stable buffers for the map's views
    std::unordered_map<std::string_view, uint32_t> ids_;
    size_t bytes_ = 0;
  };

  NodeId AllocateNode();
  void FreeNode(NodeId id);
  Status ValidateLiveNode(NodeId id) const;

  // Points a node's flow_to_child entry at `child` (growing the array as needed) and
  // refreshes the hot mirror. The single mutation point for the flow mirror.
  void SetFlowChild(NodeId node, hfair::FlowId flow, NodeId child);
  // Clears a flow entry and compacts the trailing invalid run, so a node's array
  // tracks its live flow span instead of the historical maximum.
  void ClearFlowChild(NodeId node, hfair::FlowId flow);

  // True if the subtree rooted at `id` holds a runnable thread not already on a CPU.
  bool Dispatchable(NodeId id) const;

  // Logs a leaf whose dispatchability may have changed. Deduped per drain round
  // via a per-slot epoch stamp: re-marking a leaf already in the log is a two-load
  // no-op, so a wakeup storm cycling the same leaves costs one entry per leaf.
  // Past the cap (distinct leaves, post-dedup) the log is poisoned instead of
  // grown, so an undrained log costs O(cap) memory total.
  void MarkDirtyLeaf(NodeId leaf) {
    ++dirty_marks_;
    if (dirty_overflow_) {
      return;
    }
    if (dirty_epoch_[leaf] == dirty_epoch_cur_) {
      return;  // already logged this round
    }
    if (dirty_leaves_.size() < DirtyLeafCap()) {
      dirty_epoch_[leaf] = dirty_epoch_cur_;
      dirty_leaves_.push_back(leaf);
      ++dirty_appends_;
    } else {
      dirty_overflow_ = true;
    }
  }

  // Cap on distinct logged leaves per drain round. Adaptive: small trees keep the
  // tight fixed bound (an undrained log stays O(kDirtyLeafCapMin) forever), while
  // a million-leaf tree gets storm headroom proportional to its size — a 50k-leaf
  // synchronized wakeup storm at 10^6 leaves stays incremental instead of
  // overflowing into a full sweep, at a worst-case log cost of n/16 slot ids.
  size_t DirtyLeafCap() const {
    return std::max(kDirtyLeafCapMin, node_count_ / 16);
  }

  // Poisons one top-level subtree: the next drain reports `subtree_root` so the
  // consumer can sweep just that tenant. `subtree_root` must already be resolved
  // via SubtreeRootOf; kRootNode (a root-level structural change) poisons globally.
  void MarkDirtySubtree(NodeId subtree_root) {
    if (dirty_overflow_) {
      return;
    }
    if (subtree_root == kRootNode || subtree_root == kInvalidNode) {
      MarkDirtyAll();
      return;
    }
    for (NodeId s : dirty_subtrees_) {
      if (s == subtree_root) {
        return;
      }
    }
    if (dirty_subtrees_.size() < kDirtySubtreeCap) {
      dirty_subtrees_.push_back(subtree_root);
    } else {
      dirty_overflow_ = true;
    }
  }

  // Poisons the log globally: the next drain reports it incomplete and the
  // consumer falls back to the full sweep.
  void MarkDirtyAll() { dirty_overflow_ = true; }

  // Re-stamps the cached top-level subtree root for the whole subtree at `node`
  // (MoveNode re-parenting).
  void SetSubtreeRoot(NodeId node, NodeId subtree_root);

  // Marks `node` runnable and arrives it in its parent, recursing upward until an
  // already-runnable ancestor (the paper's early-stop).
  void PropagateRunnable(NodeId node, Time now);

  // Marks `node` not runnable and departs it from its parent, recursing upward while
  // ancestors lose their last runnable child.
  void PropagateSleep(NodeId node, Time now);

  std::vector<HotNode> hot_;
  std::vector<ColdNode> cold_;
  std::vector<uint32_t> slot_gen_;  // high-water sized: survives arena trimming
  std::vector<NodeId> free_nodes_;  // min-heap: lowest id recycled first
  size_t node_count_ = 0;
  NamePool names_;
  hscommon::FlatMap<ThreadId, NodeId, kInvalidThread> thread_to_leaf_;

  // Outstanding dispatches, in Schedule order (at most one per CPU). `fast` marks a
  // ScheduleLeaf dispatch: its charge in Update must take the matching fast walk
  // (no per-level SFQ completion, since the pick did no per-level SFQ selection).
  struct RunningEntry {
    ThreadId thread = kInvalidThread;
    NodeId leaf = kInvalidNode;
    int cpu = 0;
    bool fast = false;
  };
  std::vector<RunningEntry> running_;

  htrace::Tracer* tracer_ = nullptr;

  uint64_t schedule_count_ = 0;
  uint64_t update_count_ = 0;
  uint64_t state_gen_ = 1;

  // Dispatchability change log (see DrainDispatchDirty). The cap bounds what an
  // undrained log can cost; one overflowed round merely costs the consumer a full
  // sweep, which was the unconditional price before the log existed. With dedup
  // the log cannot exceed the live leaf count either way. Mutable so the
  // const-viewing dispatcher can drain it.
  static constexpr size_t kDirtyLeafCapMin = 4096;
  static constexpr size_t kDirtySubtreeCap = 64;
  mutable std::vector<NodeId> dirty_leaves_;
  mutable std::vector<NodeId> dirty_subtrees_;  // deduped poisoned tenant roots
  mutable bool dirty_overflow_ = false;
  // Per-slot dedup stamp: slot is in the log iff dirty_epoch_[slot] equals the
  // current epoch. Drains bump the epoch (O(1) log reset); FreeNode clears the
  // slot's stamp so a recycled slot logs afresh. High-water sized like slot_gen_.
  mutable std::vector<uint32_t> dirty_epoch_;
  mutable uint32_t dirty_epoch_cur_ = 1;
  mutable uint64_t dirty_marks_ = 0;    // MarkDirtyLeaf calls (pre-dedup)
  mutable uint64_t dirty_appends_ = 0;  // entries actually appended (post-dedup)
};

}  // namespace hsfq

#endif  // HSCHED_SRC_HSFQ_STRUCTURE_H_
