#include "src/hsfq/structure.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "src/common/virtual_time.h"

namespace hsfq {

using hscommon::AlreadyExists;
using hscommon::FailedPrecondition;
using hscommon::Internal;
using hscommon::InvalidArgument;
using hscommon::NotFound;

namespace {
// Deepest root->leaf path the sharded dispatch fast path supports; matches the
// offline invariant checker's ancestor-walk bound.
constexpr size_t kMaxDepth = 64;
// "Name never interned" sentinel from NamePool::Lookup.
constexpr uint32_t kNoName = UINT32_MAX;
}  // namespace

uint32_t SchedulingStructure::NamePool::Intern(std::string_view name) {
  if (const auto it = ids_.find(name); it != ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  // Approximate: the string payload plus one map node (bucket pointer + key/value).
  bytes_ += name.size() + sizeof(std::string) + 4 * sizeof(void*);
  return id;
}

uint32_t SchedulingStructure::NamePool::Lookup(std::string_view name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoName : it->second;
}

SchedulingStructure::SchedulingStructure() {
  const NodeId root = AllocateNode();
  assert(root == kRootNode);
  (void)root;
  cold_[kRootNode].name_id = names_.Intern("");
  cold_[kRootNode].sfq = std::make_unique<hfair::Sfq>();
  HotNode& h = hot_[kRootNode];
  h.parent = kInvalidNode;
  h.weight = 1;
  h.subtree = kRootNode;
  h.sfq = cold_[kRootNode].sfq.get();
}

SchedulingStructure::~SchedulingStructure() = default;

NodeId SchedulingStructure::AllocateNode() {
  ++node_count_;
  if (!free_nodes_.empty()) {
    // Lowest free slot first: the live id range stays dense under churn, which keeps
    // the arena (and every parent's flow mirror) compactable to the live population.
    std::pop_heap(free_nodes_.begin(), free_nodes_.end(), std::greater<NodeId>());
    const NodeId id = free_nodes_.back();
    free_nodes_.pop_back();
    hot_[id].in_use = true;
    return id;
  }
  hot_.emplace_back();
  hot_.back().in_use = true;
  cold_.emplace_back();
  if (slot_gen_.size() < hot_.size()) {
    slot_gen_.push_back(0);  // high-water sized: survives trims, so handles never lie
  }
  if (dirty_epoch_.size() < hot_.size()) {
    dirty_epoch_.push_back(0);  // high-water sized alongside slot_gen_
  }
  return static_cast<NodeId>(hot_.size() - 1);
}

void SchedulingStructure::FreeNode(NodeId id) {
  ++slot_gen_[id];  // stale NodeHandles to this slot stop validating
  hot_[id] = HotNode{};
  cold_[id] = ColdNode{};
  if (id < dirty_epoch_.size()) {
    dirty_epoch_[id] = 0;  // a recycled slot must log afresh, not hit the old stamp
  }
  free_nodes_.push_back(id);
  std::push_heap(free_nodes_.begin(), free_nodes_.end(), std::greater<NodeId>());
  --node_count_;

  // Trim the trailing dead run so SlotCount() tracks the live population, not the
  // historical maximum. Only sizeable runs, to amortize the free-heap rebuild.
  size_t n = hot_.size();
  while (n > 1 && !hot_[n - 1].in_use) --n;
  if (hot_.size() - n < std::max<size_t>(8, hot_.size() / 4)) {
    return;
  }
  hot_.resize(n);
  cold_.resize(n);
  free_nodes_.erase(std::remove_if(free_nodes_.begin(), free_nodes_.end(),
                                   [n](NodeId f) { return f >= n; }),
                    free_nodes_.end());
  std::make_heap(free_nodes_.begin(), free_nodes_.end(), std::greater<NodeId>());
}

Status SchedulingStructure::ValidateLiveNode(NodeId id) const {
  if (id >= hot_.size() || !hot_[id].in_use) {
    return NotFound("no such node id " + std::to_string(id));
  }
  return Status::Ok();
}

void SchedulingStructure::SetFlowChild(NodeId node, hfair::FlowId flow, NodeId child) {
  ColdNode& c = cold_[node];
  if (c.flow_to_child.size() <= flow) {
    c.flow_to_child.resize(flow + 1, kInvalidNode);
  }
  c.flow_to_child[flow] = child;
  hot_[node].flow_to_child = c.flow_to_child.data();
}

void SchedulingStructure::ClearFlowChild(NodeId node, hfair::FlowId flow) {
  ColdNode& c = cold_[node];
  assert(flow < c.flow_to_child.size());
  c.flow_to_child[flow] = kInvalidNode;
  // Compact: with min-id flow recycling the trailing invalid run IS the slack between
  // the live flow span and the historical maximum, so popping it bounds the mirror by
  // the live child population.
  while (!c.flow_to_child.empty() && c.flow_to_child.back() == kInvalidNode) {
    c.flow_to_child.pop_back();
  }
  if (c.flow_to_child.capacity() > 8 &&
      c.flow_to_child.size() * 4 <= c.flow_to_child.capacity()) {
    c.flow_to_child.shrink_to_fit();
  }
  hot_[node].flow_to_child = c.flow_to_child.data();
}

StatusOr<NodeId> SchedulingStructure::MakeNode(const std::string& name, NodeId parent,
                                               Weight weight,
                                               std::unique_ptr<LeafScheduler> leaf_scheduler) {
  if (Status s = ValidateLiveNode(parent); !s.ok()) {
    return s;
  }
  if (name.empty() || name.find('/') != std::string::npos || name == "." || name == "..") {
    return InvalidArgument("node name must be one non-empty path component: '" + name + "'");
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  if (hot_[parent].is_leaf()) {
    return FailedPrecondition("parent '" + PathOf(parent) + "' is a leaf node");
  }
  // Interning up front costs nothing when the name recurs (the steady churn shape) and
  // the id doubles as the duplicate-sibling probe.
  const uint32_t name_id = names_.Intern(name);
  if (const NodeId* dup = cold_[parent].child_index.Find(name_id); dup != nullptr) {
    return AlreadyExists("node '" + PathOf(*dup) + "' already exists");
  }

  const NodeId id = AllocateNode();  // may reallocate hot_/cold_: take refs after
  ColdNode& c = cold_[id];
  HotNode& h = hot_[id];
  c.name_id = name_id;
  h.parent = parent;
  h.weight = weight;
  h.subtree = parent == kRootNode ? id : hot_[parent].subtree;
  if (leaf_scheduler != nullptr) {
    c.leaf = std::move(leaf_scheduler);
    h.leaf = c.leaf.get();
  } else {
    c.sfq = std::make_unique<hfair::Sfq>();
    h.sfq = c.sfq.get();
  }
  // Register the new node as a flow of its parent's SFQ instance.
  h.flow_in_parent = hot_[parent].sfq->AddFlow(weight);
  SetFlowChild(parent, h.flow_in_parent, id);
  cold_[parent].children.push_back(id);
  cold_[parent].child_index.Insert(name_id, id);
  ++state_gen_;
  MarkDirtySubtree(h.subtree);
  if (tracer_ != nullptr) {
    tracer_->RecordMakeNode(0, id, parent, weight, h.is_leaf(), name);
  }
  return id;
}

StatusOr<NodeId> SchedulingStructure::Parse(const std::string& path, NodeId hint) const {
  if (path.empty()) {
    return InvalidArgument("empty path");
  }
  std::string_view rest(path);
  NodeId cur;
  if (rest.front() == '/') {
    cur = kRootNode;
    rest.remove_prefix(1);
  } else {
    if (Status s = ValidateLiveNode(hint); !s.ok()) {
      return s;
    }
    cur = hint;
  }
  while (!rest.empty()) {
    const size_t slash = rest.find('/');
    const std::string_view component = rest.substr(0, slash);
    rest.remove_prefix(slash == std::string_view::npos ? rest.size() : slash + 1);
    if (component.empty() || component == ".") {
      continue;
    }
    if (component == "..") {
      const NodeId parent = hot_[cur].parent;
      cur = parent == kInvalidNode ? kRootNode : parent;
      continue;
    }
    // A name that was never interned cannot name any child; otherwise one integer
    // probe of the child index resolves the component. No allocation either way.
    const uint32_t name_id = names_.Lookup(component);
    const NodeId* found =
        name_id == kNoName ? nullptr : cold_[cur].child_index.Find(name_id);
    if (found == nullptr) {
      return NotFound("no node '" + std::string(component) + "' under '" + PathOf(cur) +
                      "'");
    }
    cur = *found;
  }
  return cur;
}

Status SchedulingStructure::RemoveNode(NodeId node) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (node == kRootNode) {
    return FailedPrecondition("cannot remove the root node");
  }
  HotNode& n = hot_[node];
  if (!cold_[node].children.empty()) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has children");
  }
  if (cold_[node].thread_count > 0) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has threads");
  }
  if (n.in_service()) {
    return FailedPrecondition("node '" + PathOf(node) + "' is being dispatched");
  }
  assert(!n.runnable && "a node with no threads cannot be runnable");

  const NodeId parent = n.parent;
  const NodeId subtree = n.subtree;  // captured: FreeNode wipes the hot slot
  hot_[parent].sfq->RemoveFlow(n.flow_in_parent);
  ClearFlowChild(parent, n.flow_in_parent);
  std::erase(cold_[parent].children, node);
  cold_[parent].child_index.Erase(cold_[node].name_id);

  FreeNode(node);
  ++state_gen_;
  MarkDirtySubtree(subtree);
  if (tracer_ != nullptr) {
    tracer_->RecordRemoveNode(0, node);
  }
  return Status::Ok();
}

Status SchedulingStructure::AttachThread(ThreadId thread, NodeId leaf,
                                         const ThreadParams& params) {
  if (Status s = ValidateLiveNode(leaf); !s.ok()) {
    return s;
  }
  if (thread == kInvalidThread) {
    return InvalidArgument("kInvalidThread cannot be attached");
  }
  HotNode& n = hot_[leaf];
  if (!n.is_leaf()) {
    return FailedPrecondition("node '" + PathOf(leaf) + "' is not a leaf");
  }
  if (thread_to_leaf_.Contains(thread)) {
    return AlreadyExists("thread " + std::to_string(thread) + " is already attached");
  }
  if (Status s = n.leaf->AddThread(thread, params); !s.ok()) {
    return s;
  }
  thread_to_leaf_.Insert(thread, leaf);
  ++cold_[leaf].thread_count;
  MarkDirtyLeaf(leaf);
  if (tracer_ != nullptr) {
    tracer_->RecordAttachThread(0, leaf, thread, params.weight);
  }
  return Status::Ok();
}

Status SchedulingStructure::AdmitThread(ThreadId thread, NodeId leaf,
                                        const ThreadParams& params, Time now) {
  // Admin verbs take raw node ids from outside the kernel: an unknown or removed id is
  // an invalid argument (kErrInval at the system-call layer), not a lookup miss.
  if (!ValidateLiveNode(leaf).ok()) {
    return InvalidArgument("admit target " + std::to_string(leaf) + " is not a live node");
  }
  HotNode& n = hot_[leaf];
  if (!n.is_leaf()) {
    return InvalidArgument("node " + std::to_string(leaf) + " is not a leaf");
  }
  const Status verdict = n.leaf->AdmitQuery(params);
  if (tracer_ != nullptr) {
    // Would-be utilization of the leaf if this set were admitted: what the class has
    // already booked plus the candidate's C/T demand, in parts per million.
    double would_be = n.leaf->BookedUtilization();
    if (params.period > 0 && params.computation > 0) {
      would_be += static_cast<double>(params.computation) /
                  static_cast<double>(params.period);
    }
    tracer_->RecordAdmit(now, leaf, thread,
                         static_cast<int64_t>(would_be * 1e6), verdict.ok(),
                         n.leaf->Name());
  }
  return verdict;
}

Status SchedulingStructure::RevokeAdmissions(NodeId leaf, Time now) {
  if (!ValidateLiveNode(leaf).ok()) {
    return InvalidArgument("revoke target " + std::to_string(leaf) +
                           " is not a live node");
  }
  HotNode& n = hot_[leaf];
  if (!n.is_leaf()) {
    return InvalidArgument("node " + std::to_string(leaf) + " is not a leaf");
  }
  const double booked = n.leaf->BookedUtilization();
  n.leaf->RevokeAdmissions();
  MarkDirtyLeaf(leaf);  // revocation may retract queued reservation threads
  if (tracer_ != nullptr) {
    tracer_->RecordGovern(now, htrace::GovernAction::kRevoke, leaf, 0,
                          static_cast<int64_t>(booked * 1e6), "revoke");
  }
  return Status::Ok();
}

Status SchedulingStructure::DetachThread(ThreadId thread) {
  const NodeId* found = thread_to_leaf_.Find(thread);
  if (found == nullptr) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (IsRunning(thread)) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const NodeId leaf_id = *found;
  HotNode& n = hot_[leaf_id];
  const bool was_runnable = n.leaf->IsThreadRunnable(thread);
  n.leaf->RemoveThread(thread);
  --cold_[leaf_id].thread_count;
  thread_to_leaf_.Erase(thread);
  if (was_runnable && n.runnable && !n.in_service() && !n.leaf->HasRunnable()) {
    PropagateSleep(leaf_id, /*now=*/0);
  }
  MarkDirtyLeaf(leaf_id);
  if (tracer_ != nullptr) {
    tracer_->RecordDetachThread(0, leaf_id, thread);
  }
  return Status::Ok();
}

Status SchedulingStructure::MoveThread(ThreadId thread, NodeId to, const ThreadParams& params,
                                       Time now) {
  const NodeId* found = thread_to_leaf_.Find(thread);
  if (found == nullptr) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (Status s = ValidateLiveNode(to); !s.ok()) {
    return s;
  }
  if (!hot_[to].is_leaf()) {
    return FailedPrecondition("destination '" + PathOf(to) + "' is not a leaf");
  }
  if (IsRunning(thread)) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const bool was_runnable = hot_[*found].leaf->IsThreadRunnable(thread);
  if (Status s = DetachThread(thread); !s.ok()) {
    return s;
  }
  if (Status s = AttachThread(thread, to, params); !s.ok()) {
    return s;
  }
  if (tracer_ != nullptr) {
    tracer_->RecordMoveThread(now, to, thread);
  }
  if (was_runnable) {
    SetRun(thread, now);
  }
  return Status::Ok();
}

Status SchedulingStructure::MoveNode(NodeId node, NodeId to, Time now) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (Status s = ValidateLiveNode(to); !s.ok()) {
    return s;
  }
  if (node == kRootNode) {
    return FailedPrecondition("cannot move the root node");
  }
  HotNode& n = hot_[node];
  if (hot_[to].is_leaf()) {
    return FailedPrecondition("destination '" + PathOf(to) + "' is not an interior node");
  }
  if (to == n.parent) {
    return Status::Ok();  // already there
  }
  for (NodeId cur = to; cur != kRootNode; cur = hot_[cur].parent) {
    if (cur == node) {
      return FailedPrecondition("destination '" + PathOf(to) +
                                "' is inside the moved subtree");
    }
  }
  // A CPU dispatched anywhere in node's subtree holds in_service_count > 0 on node.
  if (n.in_service()) {
    return FailedPrecondition("node '" + PathOf(node) + "' is being dispatched");
  }
  if (const NodeId* dup = cold_[to].child_index.Find(cold_[node].name_id);
      dup != nullptr) {
    return AlreadyExists("node '" + PathOf(*dup) + "' already exists");
  }

  const bool was_runnable = n.runnable;
  const NodeId old_parent = n.parent;
  if (was_runnable) {
    // Runnable and not in service => its flow is backlogged in the old parent.
    hot_[old_parent].sfq->Depart(n.flow_in_parent, now);
  }
  hot_[old_parent].sfq->RemoveFlow(n.flow_in_parent);
  ClearFlowChild(old_parent, n.flow_in_parent);
  std::erase(cold_[old_parent].children, node);
  cold_[old_parent].child_index.Erase(cold_[node].name_id);
  if (was_runnable && !(hot_[old_parent].sfq->HasBacklog() ||
                        hot_[old_parent].sfq->InServiceCount() > 0)) {
    PropagateSleep(old_parent, now);  // the old parent lost its last runnable child
  }

  // Re-attach as a FRESH flow of the destination (tags S = F = 0): the §4 re-attachment
  // rule. The stale start tag from the source parent's virtual clock is discarded, and
  // the arrival below (or the next PropagateRunnable) stamps S = max(v_dest, 0) =
  // v_dest, so the subtree competes from the destination's present — neither starved by
  // a clock that ran far ahead nor handed a windfall by one that lagged.
  n.parent = to;
  n.flow_in_parent = hot_[to].sfq->AddFlow(n.weight);
  SetFlowChild(to, n.flow_in_parent, node);
  cold_[to].children.push_back(node);
  cold_[to].child_index.Insert(cold_[node].name_id, node);
  // The moved subtree changed tenants: poison both sides' logs and re-stamp the
  // cached top-level roots for every node that moved.
  const NodeId old_subtree = n.subtree;
  SetSubtreeRoot(node, to == kRootNode ? node : hot_[to].subtree);
  ++state_gen_;
  MarkDirtySubtree(old_subtree);
  MarkDirtySubtree(hot_[node].subtree);
  if (was_runnable) {
    PropagateRunnable(node, now);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordMoveNode(now, node, to);
  }
  return Status::Ok();
}

Status SchedulingStructure::SetNodeWeight(NodeId node, Weight weight) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  HotNode& n = hot_[node];
  n.weight = weight;
  ++state_gen_;
  // A reweight changes shares, not dispatchability; shares refresh off
  // StateGeneration. The subtree poison is defensive coverage for that tenant
  // only — a top-level reweight shifts SIBLING tenants' shares too, but those
  // flow through the same generation bump, so no wider poison is needed.
  MarkDirtySubtree(n.subtree);
  if (n.parent != kInvalidNode) {
    // Re-price, don't just relabel: a backlogged flow's start tag was stamped under the
    // old weight, so the plain SetWeight would charge its already-queued slice at the old
    // rate until the next Complete. SetWeightNormalized rescales the pending span
    // (S - v) by w_old/w_new so the very next slice is served at the new share.
    hot_[n.parent].sfq->SetWeightNormalized(n.flow_in_parent, weight);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordSetWeight(0, node, weight);
  }
  return Status::Ok();
}

StatusOr<Weight> SchedulingStructure::GetNodeWeight(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return hot_[node].weight;
}

Status SchedulingStructure::SetThreadParams(ThreadId thread, const ThreadParams& params) {
  const NodeId* found = thread_to_leaf_.Find(thread);
  if (found == nullptr) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return hot_[*found].leaf->SetThreadParams(thread, params);
}

void SchedulingStructure::PropagateRunnable(NodeId node, Time now) {
  // Walk up, stamping SFQ arrivals, until an already-runnable ancestor is found
  // (the paper's hsfq_setrun early-stop).
  ++state_gen_;
  NodeId cur = node;
  for (;;) {
    HotNode& n = hot_[cur];
    n.runnable = true;
    if (cur == kRootNode) {
      return;
    }
    HotNode& p = hot_[n.parent];
    p.sfq->Arrive(n.flow_in_parent, now);
    if (p.runnable) {
      return;
    }
    cur = n.parent;
  }
}

void SchedulingStructure::PropagateSleep(NodeId node, Time now) {
  (void)now;
  // Walk up, retracting SFQ arrivals, while ancestors lose their last runnable child
  // (the paper's hsfq_sleep early-stop).
  ++state_gen_;
  NodeId cur = node;
  for (;;) {
    HotNode& n = hot_[cur];
    n.runnable = false;
    if (cur == kRootNode) {
      return;
    }
    HotNode& p = hot_[n.parent];
    p.sfq->Depart(n.flow_in_parent);
    if (p.sfq->HasBacklog() || p.sfq->InServiceCount() > 0) {
      return;  // the parent still has another runnable child
    }
    cur = n.parent;
  }
}

void SchedulingStructure::SetRun(ThreadId thread, Time now) {
  const NodeId* found = thread_to_leaf_.Find(thread);
  assert(found != nullptr && "SetRun on unattached thread");
  const NodeId leaf_id = *found;
  if (tracer_ != nullptr) {
    tracer_->RecordSetRun(now, leaf_id, thread);
  }
  HotNode& n = hot_[leaf_id];
  n.leaf->ThreadRunnable(thread, now);
  if (!n.runnable) {
    PropagateRunnable(leaf_id, now);
  }
  MarkDirtyLeaf(leaf_id);
}

void SchedulingStructure::Sleep(ThreadId thread, Time now) {
  const NodeId* found = thread_to_leaf_.Find(thread);
  assert(found != nullptr && "Sleep on unattached thread");
  assert(!IsRunning(thread) && "a running thread blocks via Update instead");
  const NodeId leaf_id = *found;
  if (tracer_ != nullptr) {
    tracer_->RecordSleep(now, leaf_id, thread);
  }
  HotNode& n = hot_[leaf_id];
  n.leaf->ThreadBlocked(thread, now);
  if (n.runnable && !n.in_service() && !n.leaf->HasRunnable()) {
    PropagateSleep(leaf_id, now);
  }
  MarkDirtyLeaf(leaf_id);
}

bool SchedulingStructure::Dispatchable(NodeId id) const {
  const HotNode& n = hot_[id];
  if (n.is_leaf()) {
    return n.leaf->HasDispatchable();
  }
  // Any ready (not-in-service) child flow roots a subtree with no CPU inside it, so a
  // runnable thread there is necessarily off-cpu.
  if (n.sfq->HasBacklog()) {
    return true;
  }
  // An in-service child may still have uncovered work in another part of its subtree.
  for (hfair::FlowId f : n.sfq->InServiceFlows()) {
    if (Dispatchable(n.flow_to_child[f])) {
      return true;
    }
  }
  return false;
}

bool SchedulingStructure::IsRunning(ThreadId thread) const {
  for (const RunningEntry& r : running_) {
    if (r.thread == thread) {
      return true;
    }
  }
  return false;
}

ThreadId SchedulingStructure::Schedule(Time now, int cpu) {
  ++schedule_count_;
  if (!Dispatchable(kRootNode)) {
    return kInvalidThread;
  }
  NodeId cur = kRootNode;
  for (;;) {
    HotNode& n = hot_[cur];
    ++n.in_service_count;
    if (n.is_leaf()) {
      break;
    }
    // Candidates at this level: the ready minimum, plus in-service child flows whose
    // subtrees still hold dispatchable work (another CPU is inside, but has not covered
    // all of it). The minimum (priced start tag, flow id) wins: in-service candidates
    // compete with their in-flight slices priced in (see Sfq::PricedStartTag), so
    // concurrent CPUs spread across flows in weight proportion instead of piling onto
    // whichever flow's raw tag is momentarily lowest. A ready flow carries no
    // surcharge, so on one CPU (no in-service flows at pick time) this is exactly the
    // classic PickNext descent.
    hfair::FlowId best = n.sfq->ReadyTopFlow();
    bool best_is_ready = best != hfair::kInvalidFlow;
    for (hfair::FlowId f : n.sfq->InServiceFlows()) {
      if (!Dispatchable(n.flow_to_child[f])) {
        continue;
      }
      if (best == hfair::kInvalidFlow ||
          n.sfq->PricedStartTag(f) < n.sfq->PricedStartTag(best) ||
          (n.sfq->PricedStartTag(f) == n.sfq->PricedStartTag(best) && f < best)) {
        best = f;
        best_is_ready = false;
      }
    }
    assert(best != hfair::kInvalidFlow && "dispatchable interior node with no candidate");
    // The decision tag, captured before the pick mutates the flow's in-flight count.
    // For a ready pick this is the raw start tag (single-CPU traces are unchanged
    // byte for byte); for a concurrent pick it is the priced tag the comparison used.
    const hscommon::VirtualTime decision_tag = n.sfq->PricedStartTag(best);
    if (best_is_ready) {
      const hfair::FlowId picked = n.sfq->PickNext(now);
      assert(picked == best);
      (void)picked;
    } else {
      n.sfq->PickAgain(best);
    }
    const NodeId child = n.flow_to_child[best];
    if (tracer_ != nullptr) {
      // The picked child's decision tag tracks the node's SFQ virtual time; record its
      // integer part so offline invariant checking can verify it never regresses (on
      // SMP traces: never regresses beyond the bounded in-flight surcharge).
      tracer_->RecordPickChild(now, cur, child,
                               static_cast<int64_t>(decision_tag.IntegerUnits()),
                               static_cast<uint32_t>(cpu));
    }
    cur = child;
  }
  HotNode& leaf = hot_[cur];
  const ThreadId thread = leaf.leaf->PickNext(now);
  assert(thread != kInvalidThread && "dispatchable leaf with no dispatchable thread");
  assert(!IsRunning(thread) && "leaf handed out a thread that is already on a CPU");
  running_.push_back(RunningEntry{thread, cur, cpu});
  if (tracer_ != nullptr) {
    tracer_->RecordSchedule(now, cur, thread, static_cast<uint32_t>(cpu));
  }
  return thread;
}

void SchedulingStructure::Update(ThreadId thread, Work used, Time now, bool still_runnable,
                                 int cpu) {
  ++update_count_;
  size_t idx = running_.size();
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].thread == thread) {
      idx = i;
      break;
    }
  }
  assert(idx < running_.size() && "Update must name a running thread");
  assert(running_[idx].cpu == cpu && "Update must come from the CPU that dispatched");
  (void)cpu;
  const NodeId leaf_id = running_[idx].leaf;
  const bool fast = running_[idx].fast;
  running_.erase(running_.begin() + static_cast<ptrdiff_t>(idx));
  if (tracer_ != nullptr) {
    tracer_->RecordUpdate(now, leaf_id, thread, used, still_runnable,
                          static_cast<uint32_t>(cpu));
  }
  HotNode& leaf = hot_[leaf_id];
  leaf.leaf->Charge(thread, used, now, still_runnable);
  MarkDirtyLeaf(leaf_id);
  const bool leaf_was_runnable = leaf.runnable;

  if (fast) {
    // Releasing a ScheduleLeaf dispatch: the pick did no interior SFQ work, so the
    // charge does none either — service and in-service counts roll straight up the
    // path. In fast mode a leaf counts as runnable while a CPU is still inside it
    // (its flow stays in every ancestor's ready set while the subtree is active, and
    // EffectiveShare should keep counting a sibling that is consuming service), so
    // only when the last slice drains AND no thread is runnable does the ordinary
    // sleep propagation retract the flow from each ancestor.
    --leaf.in_service_count;
    leaf.total_service += used;
    leaf.runnable = leaf.leaf->HasRunnable() || leaf.in_service_count > 0;
    if (leaf.runnable != leaf_was_runnable) {
      ++state_gen_;
    }
    for (NodeId cur = leaf_id; cur != kRootNode; cur = hot_[cur].parent) {
      HotNode& p = hot_[hot_[cur].parent];
      --p.in_service_count;
      p.total_service += used;
    }
    assert(leaf_was_runnable && "a fast slice was in service, so the leaf was active");
    if (!leaf.runnable) {
      PropagateSleep(leaf_id, now);
    }
    return;
  }

  leaf.runnable = leaf.leaf->HasRunnable();
  if (leaf.runnable != leaf_was_runnable) {
    ++state_gen_;
  }
  --leaf.in_service_count;
  leaf.total_service += used;

  NodeId cur = leaf_id;
  while (cur != kRootNode) {
    HotNode& n = hot_[cur];
    HotNode& p = hot_[n.parent];
    p.sfq->Complete(n.flow_in_parent, used, now, n.runnable);
    // Another CPU may still be dispatched through p (its flow is in service, not in the
    // ready backlog), so runnability must account for outstanding services — the classic
    // HasBacklog()-only formula silently marked such nodes idle.
    const bool was_runnable = p.runnable;
    p.runnable = p.sfq->HasBacklog() || p.sfq->InServiceCount() > 0;
    if (p.runnable != was_runnable) {
      ++state_gen_;
    }
    --p.in_service_count;
    p.total_service += used;
    cur = n.parent;
  }
}

ThreadId SchedulingStructure::ScheduleLeaf(NodeId leaf_id, Time now, int cpu,
                                           bool* still_dispatchable) {
  ++schedule_count_;
  HotNode& leaf = hot_[leaf_id];
  assert(leaf.is_leaf() && "ScheduleLeaf needs a leaf node");
  if (!leaf.leaf->HasDispatchable()) {
    return kInvalidThread;
  }
  // The shard heap already made the fairness decision, so the interior levels need no
  // SFQ selection or tag surgery — the running child's flow simply STAYS in its
  // parent's ready set (Update's fast walk and PropagateSleep retract it when the
  // subtree really goes idle). Only the in-service counts move: they guard
  // MoveNode/RemoveNode and tell Sleep a subtree has a CPU inside it.
  for (NodeId cur = leaf_id; cur != kRootNode; cur = hot_[cur].parent) {
    ++hot_[cur].in_service_count;
  }
  ++hot_[kRootNode].in_service_count;
  const ThreadId thread = leaf.leaf->PickNext(now);
  assert(thread != kInvalidThread && "dispatchable leaf with no dispatchable thread");
  assert(!IsRunning(thread) && "leaf handed out a thread that is already on a CPU");
  if (still_dispatchable != nullptr) {
    *still_dispatchable = leaf.leaf->HasDispatchable();  // leaf is hot right here
  }
  running_.push_back(RunningEntry{thread, leaf_id, cpu, /*fast=*/true});
  if (tracer_ != nullptr) {
    tracer_->RecordSchedule(now, leaf_id, thread, static_cast<uint32_t>(cpu));
  }
  return thread;
}

bool SchedulingStructure::LeafDispatchable(NodeId node) const {
  if (node >= hot_.size() || !hot_[node].in_use || !hot_[node].is_leaf()) {
    return false;
  }
  return hot_[node].leaf->HasDispatchable();
}

std::vector<NodeId> SchedulingStructure::DispatchableLeaves() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < hot_.size(); ++id) {
    const HotNode& n = hot_[id];
    if (n.in_use && n.is_leaf() && n.leaf->HasDispatchable()) {
      out.push_back(id);
    }
  }
  return out;
}

bool SchedulingStructure::DrainDispatchDirty(std::vector<NodeId>* leaves,
                                             std::vector<NodeId>* poisoned) const {
  const bool complete = !dirty_overflow_;
  if (complete) {
    leaves->insert(leaves->end(), dirty_leaves_.begin(), dirty_leaves_.end());
    if (poisoned != nullptr) {
      poisoned->insert(poisoned->end(), dirty_subtrees_.begin(), dirty_subtrees_.end());
    }
  }
  dirty_leaves_.clear();
  dirty_subtrees_.clear();
  dirty_overflow_ = false;
  // Bumping the epoch empties the per-slot pending set in O(1). On the (decades
  // away at realistic rates) wrap, clear the stamps so stale marks cannot alias
  // the reused epoch value.
  if (++dirty_epoch_cur_ == 0) {
    std::fill(dirty_epoch_.begin(), dirty_epoch_.end(), 0u);
    dirty_epoch_cur_ = 1;
  }
  return complete;
}

bool SchedulingStructure::DrainDispatchDirty(std::vector<NodeId>* out) const {
  // Legacy consumers cannot scope a sweep to a subtree, so any poison — global or
  // tenant-local — must read as "log incomplete, do the full sweep".
  const bool had_subtree_poison = !dirty_subtrees_.empty();
  return DrainDispatchDirty(out, nullptr) && !had_subtree_poison;
}

void SchedulingStructure::LeavesUnder(NodeId node, std::vector<NodeId>* out) const {
  if (node >= hot_.size() || !hot_[node].in_use) {
    return;
  }
  if (hot_[node].is_leaf()) {
    out->push_back(node);
    return;
  }
  for (NodeId child : cold_[node].children) {
    LeavesUnder(child, out);
  }
}

void SchedulingStructure::SetSubtreeRoot(NodeId node, NodeId subtree_root) {
  hot_[node].subtree = subtree_root;
  for (NodeId child : cold_[node].children) {
    SetSubtreeRoot(child, subtree_root);
  }
}

double SchedulingStructure::EffectiveShare(NodeId leaf) const {
  double share = 1.0;
  NodeId cur = leaf;
  while (cur != kRootNode) {
    const HotNode& n = hot_[cur];
    Weight sum = 0;
    for (NodeId sibling : cold_[n.parent].children) {
      if (sibling == cur || hot_[sibling].runnable) {
        sum += hot_[sibling].weight;
      }
    }
    assert(sum >= n.weight);
    share *= static_cast<double>(n.weight) / static_cast<double>(sum);
    cur = n.parent;
  }
  return share;
}

bool SchedulingStructure::HasRunnable() const { return hot_[kRootNode].runnable; }

StatusOr<NodeId> SchedulingStructure::LeafOf(ThreadId thread) const {
  const NodeId* found = thread_to_leaf_.Find(thread);
  if (found == nullptr) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return *found;
}

std::string SchedulingStructure::PathOf(NodeId node) const {
  if (node == kRootNode) {
    return "/";
  }
  std::vector<std::string_view> parts;
  NodeId cur = node;
  while (cur != kRootNode) {
    parts.push_back(names_.NameOf(cold_[cur].name_id));
    cur = hot_[cur].parent;
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path += '/';
    path += *it;
  }
  return path;
}

NodeId SchedulingStructure::ParentOf(NodeId node) const { return hot_[node].parent; }

bool SchedulingStructure::IsLeaf(NodeId node) const { return hot_[node].is_leaf(); }

std::vector<NodeId> SchedulingStructure::ChildrenOf(NodeId node) const {
  return cold_[node].children;
}

size_t SchedulingStructure::FlowSlotsOf(NodeId node) const {
  return cold_[node].flow_to_child.size();
}

size_t SchedulingStructure::ArenaFootprintBytes() const {
  size_t bytes = hot_.capacity() * sizeof(HotNode) + cold_.capacity() * sizeof(ColdNode) +
                 slot_gen_.capacity() * sizeof(uint32_t) +
                 free_nodes_.capacity() * sizeof(NodeId) +
                 running_.capacity() * sizeof(RunningEntry) + names_.MemoryBytes() +
                 thread_to_leaf_.MemoryBytes() +
                 dirty_leaves_.capacity() * sizeof(NodeId) +
                 dirty_subtrees_.capacity() * sizeof(NodeId) +
                 dirty_epoch_.capacity() * sizeof(uint32_t);
  for (NodeId id = 0; id < hot_.size(); ++id) {
    const ColdNode& c = cold_[id];
    bytes += c.children.capacity() * sizeof(NodeId) + c.child_index.MemoryBytes() +
             c.flow_to_child.capacity() * sizeof(NodeId);
    if (c.sfq != nullptr) {
      bytes += sizeof(hfair::Sfq) + c.sfq->MemoryBytes();
    }
  }
  return bytes;
}

LeafScheduler* SchedulingStructure::LeafSchedulerOf(NodeId leaf) const {
  return hot_[leaf].leaf;
}

Work SchedulingStructure::PreferredQuantumOf(ThreadId thread) const {
  const NodeId* found = thread_to_leaf_.Find(thread);
  if (found == nullptr) {
    return 0;
  }
  return hot_[*found].leaf->PreferredQuantum(thread);
}

StatusOr<Work> SchedulingStructure::ServiceOf(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return hot_[node].total_service;
}

hscommon::VirtualTime SchedulingStructure::StartTagOf(NodeId child) const {
  const HotNode& n = hot_[child];
  assert(n.parent != kInvalidNode);
  return hot_[n.parent].sfq->StartTag(n.flow_in_parent);
}

hscommon::VirtualTime SchedulingStructure::FinishTagOf(NodeId child) const {
  const HotNode& n = hot_[child];
  assert(n.parent != kInvalidNode);
  return hot_[n.parent].sfq->FinishTag(n.flow_in_parent);
}

std::string SchedulingStructure::DebugString() const {
  std::string out;
  // Depth-first walk with explicit stack of (node, depth).
  std::vector<std::pair<NodeId, int>> stack{{kRootNode, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const HotNode& n = hot_[id];
    const ColdNode& c = cold_[id];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    if (id == kRootNode) {
      out += "/";
    } else {
      out += names_.NameOf(c.name_id);
    }
    out += " (w=" + std::to_string(n.weight);
    if (n.is_leaf()) {
      out += ", " + n.leaf->Name();
      out += ", threads=" + std::to_string(c.thread_count);
    }
    if (n.runnable) {
      out += ", runnable";
    }
    if (n.in_service()) {
      out += ", IN-SERVICE";
      if (n.in_service_count > 1) {
        out += " x" + std::to_string(n.in_service_count);
      }
    }
    if (id != kRootNode) {
      out += ", S=" + hot_[n.parent].sfq->StartTag(n.flow_in_parent).ToString();
      out += ", F=" + hot_[n.parent].sfq->FinishTag(n.flow_in_parent).ToString();
    }
    out += ")\n";
    // Push children in reverse so they render in creation order.
    for (auto it = c.children.rbegin(); it != c.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

Status SchedulingStructure::CheckInvariants() const {
  if (hot_.size() != cold_.size() || slot_gen_.size() < hot_.size()) {
    return Internal("arena arrays disagree on slot count");
  }
  for (NodeId id = 0; id < hot_.size(); ++id) {
    const HotNode& n = hot_[id];
    const ColdNode& c = cold_[id];
    if (!n.in_use) {
      continue;
    }
    // Hot/cold mirror agreement.
    if (n.sfq != c.sfq.get() || n.leaf != c.leaf.get()) {
      return Internal("node " + std::to_string(id) + " hot mirrors disagree with owners");
    }
    if (!c.flow_to_child.empty() && n.flow_to_child != c.flow_to_child.data()) {
      return Internal("node " + std::to_string(id) + " flow mirror is stale");
    }
    if ((n.sfq != nullptr) == (n.leaf != nullptr)) {
      return Internal("node " + std::to_string(id) + " must be exactly one of interior/leaf");
    }
    // Parent/child mutual consistency.
    if (id != kRootNode) {
      if (n.parent >= hot_.size() || !hot_[n.parent].in_use) {
        return Internal("node " + std::to_string(id) + " has a dead parent");
      }
      const ColdNode& pc = cold_[n.parent];
      bool found = false;
      for (NodeId child : pc.children) {
        found = found || child == id;
      }
      if (!found) {
        return Internal("node " + std::to_string(id) + " missing from parent's children");
      }
      if (pc.flow_to_child.size() <= n.flow_in_parent ||
          pc.flow_to_child[n.flow_in_parent] != id) {
        return Internal("node " + std::to_string(id) + " has a stale flow mapping");
      }
      const NodeId* by_name = pc.child_index.Find(c.name_id);
      if (by_name == nullptr || *by_name != id) {
        return Internal("node " + std::to_string(id) + " missing from parent's name index");
      }
      if (hot_[n.parent].sfq->GetWeight(n.flow_in_parent) != n.weight) {
        return Internal("node " + std::to_string(id) + " weight disagrees with parent SFQ");
      }
      // Cached top-level subtree root: itself for root children, inherited otherwise.
      const NodeId expect_subtree =
          n.parent == kRootNode ? id : hot_[n.parent].subtree;
      if (n.subtree != expect_subtree) {
        return Internal("node " + std::to_string(id) + " caches a stale subtree root");
      }
    } else if (n.subtree != kRootNode) {
      return Internal("root caches a non-root subtree root");
    }
    if (n.weight < 1) {
      return Internal("node " + std::to_string(id) + " has zero weight");
    }
    if (n.is_leaf() && !c.children.empty()) {
      return Internal("leaf node " + std::to_string(id) + " has children");
    }
    if (!n.is_leaf() && c.child_index.size() != c.children.size()) {
      return Internal("node " + std::to_string(id) + " child index size mismatch");
    }
    // Runnability consistency.
    if (n.is_leaf()) {
      const bool expect = n.leaf->HasRunnable();
      if (n.runnable != expect) {
        return Internal("leaf " + PathOf(id) + " runnable flag is stale");
      }
    } else {
      bool any_child_runnable = false;
      for (NodeId child : c.children) {
        any_child_runnable = any_child_runnable || hot_[child].runnable;
      }
      if (n.runnable != any_child_runnable) {
        return Internal("interior " + PathOf(id) + " runnable flag is stale");
      }
    }
  }
  Status thread_status = Status::Ok();
  thread_to_leaf_.ForEach([&](ThreadId thread, NodeId leaf) {
    if (thread_status.ok() &&
        (leaf >= hot_.size() || !hot_[leaf].in_use || !hot_[leaf].is_leaf())) {
      thread_status = Internal("thread " + std::to_string(thread) + " maps to a non-leaf");
    }
  });
  return thread_status;
}

}  // namespace hsfq
