#include "src/hsfq/structure.h"

#include <cassert>

#include "src/common/virtual_time.h"

namespace hsfq {

using hscommon::AlreadyExists;
using hscommon::FailedPrecondition;
using hscommon::Internal;
using hscommon::InvalidArgument;
using hscommon::NotFound;

namespace {
// Deepest root->leaf path the sharded dispatch fast path supports; matches the
// offline invariant checker's ancestor-walk bound.
constexpr size_t kMaxDepth = 64;
}  // namespace

SchedulingStructure::SchedulingStructure() {
  const NodeId root = AllocateNode();
  assert(root == kRootNode);
  Node& n = nodes_[root];
  n.name = "";
  n.parent = kInvalidNode;
  n.weight = 1;
  n.sfq = std::make_unique<hfair::Sfq>();
}

SchedulingStructure::~SchedulingStructure() = default;

NodeId SchedulingStructure::AllocateNode() {
  ++node_count_;
  if (!free_nodes_.empty()) {
    const NodeId id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    nodes_[id].in_use = true;
    return id;
  }
  nodes_.emplace_back();
  nodes_.back().in_use = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

SchedulingStructure::Node& SchedulingStructure::NodeRef(NodeId id) {
  assert(id < nodes_.size() && nodes_[id].in_use);
  return nodes_[id];
}

const SchedulingStructure::Node& SchedulingStructure::NodeRef(NodeId id) const {
  assert(id < nodes_.size() && nodes_[id].in_use);
  return nodes_[id];
}

Status SchedulingStructure::ValidateLiveNode(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].in_use) {
    return NotFound("no such node id " + std::to_string(id));
  }
  return Status::Ok();
}

StatusOr<NodeId> SchedulingStructure::MakeNode(const std::string& name, NodeId parent,
                                               Weight weight,
                                               std::unique_ptr<LeafScheduler> leaf_scheduler) {
  if (Status s = ValidateLiveNode(parent); !s.ok()) {
    return s;
  }
  if (name.empty() || name.find('/') != std::string::npos || name == "." || name == "..") {
    return InvalidArgument("node name must be one non-empty path component: '" + name + "'");
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  Node& p = NodeRef(parent);
  if (p.is_leaf()) {
    return FailedPrecondition("parent '" + PathOf(parent) + "' is a leaf node");
  }
  if (auto it = p.child_index.find(name); it != p.child_index.end()) {
    return AlreadyExists("node '" + PathOf(it->second) + "' already exists");
  }

  const NodeId id = AllocateNode();
  Node& n = nodes_[id];
  n.name = name;
  n.parent = parent;
  n.weight = weight;
  if (leaf_scheduler != nullptr) {
    n.leaf = std::move(leaf_scheduler);
  } else {
    n.sfq = std::make_unique<hfair::Sfq>();
  }
  // Register the new node as a flow of its parent's SFQ instance.
  Node& parent_ref = NodeRef(parent);  // re-fetch: AllocateNode may have reallocated
  n.flow_in_parent = parent_ref.sfq->AddFlow(weight);
  if (parent_ref.flow_to_child.size() <= n.flow_in_parent) {
    parent_ref.flow_to_child.resize(n.flow_in_parent + 1, kInvalidNode);
  }
  parent_ref.flow_to_child[n.flow_in_parent] = id;
  parent_ref.children.push_back(id);
  parent_ref.child_index.emplace(name, id);
  ++state_gen_;
  if (tracer_ != nullptr) {
    tracer_->RecordMakeNode(0, id, parent, weight, n.is_leaf(), name);
  }
  return id;
}

StatusOr<NodeId> SchedulingStructure::Parse(const std::string& path, NodeId hint) const {
  if (path.empty()) {
    return InvalidArgument("empty path");
  }
  NodeId cur;
  size_t pos = 0;
  if (path[0] == '/') {
    cur = kRootNode;
    pos = 1;
  } else {
    if (Status s = ValidateLiveNode(hint); !s.ok()) {
      return s;
    }
    cur = hint;
  }
  while (pos < path.size()) {
    const size_t next = path.find('/', pos);
    const std::string component =
        path.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next == std::string::npos ? path.size() : next + 1;
    if (component.empty() || component == ".") {
      continue;
    }
    const Node& n = NodeRef(cur);
    if (component == "..") {
      cur = n.parent == kInvalidNode ? kRootNode : n.parent;
      continue;
    }
    const auto found = n.child_index.find(component);
    if (found == n.child_index.end()) {
      return NotFound("no node '" + component + "' under '" + PathOf(cur) + "'");
    }
    cur = found->second;
  }
  return cur;
}

Status SchedulingStructure::RemoveNode(NodeId node) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (node == kRootNode) {
    return FailedPrecondition("cannot remove the root node");
  }
  Node& n = NodeRef(node);
  if (!n.children.empty()) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has children");
  }
  if (n.thread_count > 0) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has threads");
  }
  if (n.in_service()) {
    return FailedPrecondition("node '" + PathOf(node) + "' is being dispatched");
  }
  assert(!n.runnable && "a node with no threads cannot be runnable");

  Node& p = NodeRef(n.parent);
  p.sfq->RemoveFlow(n.flow_in_parent);
  p.flow_to_child[n.flow_in_parent] = kInvalidNode;
  std::erase(p.children, node);
  p.child_index.erase(n.name);

  nodes_[node] = Node{};
  free_nodes_.push_back(node);
  --node_count_;
  ++state_gen_;
  if (tracer_ != nullptr) {
    tracer_->RecordRemoveNode(0, node);
  }
  return Status::Ok();
}

Status SchedulingStructure::AttachThread(ThreadId thread, NodeId leaf,
                                         const ThreadParams& params) {
  if (Status s = ValidateLiveNode(leaf); !s.ok()) {
    return s;
  }
  Node& n = NodeRef(leaf);
  if (!n.is_leaf()) {
    return FailedPrecondition("node '" + PathOf(leaf) + "' is not a leaf");
  }
  if (thread_to_leaf_.contains(thread)) {
    return AlreadyExists("thread " + std::to_string(thread) + " is already attached");
  }
  if (Status s = n.leaf->AddThread(thread, params); !s.ok()) {
    return s;
  }
  thread_to_leaf_.emplace(thread, leaf);
  ++n.thread_count;
  if (tracer_ != nullptr) {
    tracer_->RecordAttachThread(0, leaf, thread, params.weight);
  }
  return Status::Ok();
}

Status SchedulingStructure::AdmitThread(ThreadId thread, NodeId leaf,
                                        const ThreadParams& params, Time now) {
  // Admin verbs take raw node ids from outside the kernel: an unknown or removed id is
  // an invalid argument (kErrInval at the system-call layer), not a lookup miss.
  if (!ValidateLiveNode(leaf).ok()) {
    return InvalidArgument("admit target " + std::to_string(leaf) + " is not a live node");
  }
  Node& n = NodeRef(leaf);
  if (!n.is_leaf()) {
    return InvalidArgument("node " + std::to_string(leaf) + " is not a leaf");
  }
  const Status verdict = n.leaf->AdmitQuery(params);
  if (tracer_ != nullptr) {
    // Would-be utilization of the leaf if this set were admitted: what the class has
    // already booked plus the candidate's C/T demand, in parts per million.
    double would_be = n.leaf->BookedUtilization();
    if (params.period > 0 && params.computation > 0) {
      would_be += static_cast<double>(params.computation) /
                  static_cast<double>(params.period);
    }
    tracer_->RecordAdmit(now, leaf, thread,
                         static_cast<int64_t>(would_be * 1e6), verdict.ok(),
                         n.leaf->Name());
  }
  return verdict;
}

Status SchedulingStructure::RevokeAdmissions(NodeId leaf, Time now) {
  if (!ValidateLiveNode(leaf).ok()) {
    return InvalidArgument("revoke target " + std::to_string(leaf) +
                           " is not a live node");
  }
  Node& n = NodeRef(leaf);
  if (!n.is_leaf()) {
    return InvalidArgument("node " + std::to_string(leaf) + " is not a leaf");
  }
  const double booked = n.leaf->BookedUtilization();
  n.leaf->RevokeAdmissions();
  if (tracer_ != nullptr) {
    tracer_->RecordGovern(now, htrace::GovernAction::kRevoke, leaf, 0,
                          static_cast<int64_t>(booked * 1e6), "revoke");
  }
  return Status::Ok();
}

Status SchedulingStructure::DetachThread(ThreadId thread) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (IsRunning(thread)) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const NodeId leaf_id = it->second;
  Node& n = NodeRef(leaf_id);
  const bool was_runnable = n.leaf->IsThreadRunnable(thread);
  n.leaf->RemoveThread(thread);
  --n.thread_count;
  thread_to_leaf_.erase(it);
  if (was_runnable && n.runnable && !n.in_service() && !n.leaf->HasRunnable()) {
    PropagateSleep(leaf_id, /*now=*/0);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordDetachThread(0, leaf_id, thread);
  }
  return Status::Ok();
}

Status SchedulingStructure::MoveThread(ThreadId thread, NodeId to, const ThreadParams& params,
                                       Time now) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (Status s = ValidateLiveNode(to); !s.ok()) {
    return s;
  }
  if (!NodeRef(to).is_leaf()) {
    return FailedPrecondition("destination '" + PathOf(to) + "' is not a leaf");
  }
  if (IsRunning(thread)) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const bool was_runnable = NodeRef(it->second).leaf->IsThreadRunnable(thread);
  if (Status s = DetachThread(thread); !s.ok()) {
    return s;
  }
  if (Status s = AttachThread(thread, to, params); !s.ok()) {
    return s;
  }
  if (tracer_ != nullptr) {
    tracer_->RecordMoveThread(now, to, thread);
  }
  if (was_runnable) {
    SetRun(thread, now);
  }
  return Status::Ok();
}

Status SchedulingStructure::MoveNode(NodeId node, NodeId to, Time now) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (Status s = ValidateLiveNode(to); !s.ok()) {
    return s;
  }
  if (node == kRootNode) {
    return FailedPrecondition("cannot move the root node");
  }
  Node& n = NodeRef(node);
  if (NodeRef(to).is_leaf()) {
    return FailedPrecondition("destination '" + PathOf(to) + "' is not an interior node");
  }
  if (to == n.parent) {
    return Status::Ok();  // already there
  }
  for (NodeId cur = to; cur != kRootNode; cur = NodeRef(cur).parent) {
    if (cur == node) {
      return FailedPrecondition("destination '" + PathOf(to) +
                                "' is inside the moved subtree");
    }
  }
  // A CPU dispatched anywhere in node's subtree holds in_service_count > 0 on node.
  if (n.in_service()) {
    return FailedPrecondition("node '" + PathOf(node) + "' is being dispatched");
  }
  if (auto it = NodeRef(to).child_index.find(n.name);
      it != NodeRef(to).child_index.end()) {
    return AlreadyExists("node '" + PathOf(it->second) + "' already exists");
  }

  const bool was_runnable = n.runnable;
  const NodeId old_parent = n.parent;
  Node& old_p = NodeRef(old_parent);
  if (was_runnable) {
    // Runnable and not in service => its flow is backlogged in the old parent.
    old_p.sfq->Depart(n.flow_in_parent, now);
  }
  old_p.sfq->RemoveFlow(n.flow_in_parent);
  old_p.flow_to_child[n.flow_in_parent] = kInvalidNode;
  std::erase(old_p.children, node);
  old_p.child_index.erase(n.name);
  if (was_runnable && !(old_p.sfq->HasBacklog() || old_p.sfq->InServiceCount() > 0)) {
    PropagateSleep(old_parent, now);  // the old parent lost its last runnable child
  }

  // Re-attach as a FRESH flow of the destination (tags S = F = 0): the §4 re-attachment
  // rule. The stale start tag from the source parent's virtual clock is discarded, and
  // the arrival below (or the next PropagateRunnable) stamps S = max(v_dest, 0) =
  // v_dest, so the subtree competes from the destination's present — neither starved by
  // a clock that ran far ahead nor handed a windfall by one that lagged.
  Node& dest = NodeRef(to);
  n.parent = to;
  n.flow_in_parent = dest.sfq->AddFlow(n.weight);
  if (dest.flow_to_child.size() <= n.flow_in_parent) {
    dest.flow_to_child.resize(n.flow_in_parent + 1, kInvalidNode);
  }
  dest.flow_to_child[n.flow_in_parent] = node;
  dest.children.push_back(node);
  dest.child_index.emplace(n.name, node);
  ++state_gen_;
  if (was_runnable) {
    PropagateRunnable(node, now);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordMoveNode(now, node, to);
  }
  return Status::Ok();
}

Status SchedulingStructure::SetNodeWeight(NodeId node, Weight weight) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  Node& n = NodeRef(node);
  n.weight = weight;
  ++state_gen_;
  if (n.parent != kInvalidNode) {
    // Re-price, don't just relabel: a backlogged flow's start tag was stamped under the
    // old weight, so the plain SetWeight would charge its already-queued slice at the old
    // rate until the next Complete. SetWeightNormalized rescales the pending span
    // (S - v) by w_old/w_new so the very next slice is served at the new share.
    NodeRef(n.parent).sfq->SetWeightNormalized(n.flow_in_parent, weight);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordSetWeight(0, node, weight);
  }
  return Status::Ok();
}

StatusOr<Weight> SchedulingStructure::GetNodeWeight(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return NodeRef(node).weight;
}

Status SchedulingStructure::SetThreadParams(ThreadId thread, const ThreadParams& params) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return NodeRef(it->second).leaf->SetThreadParams(thread, params);
}

void SchedulingStructure::PropagateRunnable(NodeId node, Time now) {
  // Walk up, stamping SFQ arrivals, until an already-runnable ancestor is found
  // (the paper's hsfq_setrun early-stop).
  ++state_gen_;
  NodeId cur = node;
  for (;;) {
    Node& n = NodeRef(cur);
    n.runnable = true;
    if (cur == kRootNode) {
      return;
    }
    Node& p = NodeRef(n.parent);
    p.sfq->Arrive(n.flow_in_parent, now);
    if (p.runnable) {
      return;
    }
    cur = n.parent;
  }
}

void SchedulingStructure::PropagateSleep(NodeId node, Time now) {
  (void)now;
  // Walk up, retracting SFQ arrivals, while ancestors lose their last runnable child
  // (the paper's hsfq_sleep early-stop).
  ++state_gen_;
  NodeId cur = node;
  for (;;) {
    Node& n = NodeRef(cur);
    n.runnable = false;
    if (cur == kRootNode) {
      return;
    }
    Node& p = NodeRef(n.parent);
    p.sfq->Depart(n.flow_in_parent);
    if (p.sfq->HasBacklog() || p.sfq->InServiceCount() > 0) {
      return;  // the parent still has another runnable child
    }
    cur = n.parent;
  }
}

void SchedulingStructure::SetRun(ThreadId thread, Time now) {
  const auto it = thread_to_leaf_.find(thread);
  assert(it != thread_to_leaf_.end() && "SetRun on unattached thread");
  if (tracer_ != nullptr) {
    tracer_->RecordSetRun(now, it->second, thread);
  }
  Node& n = NodeRef(it->second);
  n.leaf->ThreadRunnable(thread, now);
  if (!n.runnable) {
    PropagateRunnable(it->second, now);
  }
}

void SchedulingStructure::Sleep(ThreadId thread, Time now) {
  const auto it = thread_to_leaf_.find(thread);
  assert(it != thread_to_leaf_.end() && "Sleep on unattached thread");
  assert(!IsRunning(thread) && "a running thread blocks via Update instead");
  if (tracer_ != nullptr) {
    tracer_->RecordSleep(now, it->second, thread);
  }
  Node& n = NodeRef(it->second);
  n.leaf->ThreadBlocked(thread, now);
  if (n.runnable && !n.in_service() && !n.leaf->HasRunnable()) {
    PropagateSleep(it->second, now);
  }
}

bool SchedulingStructure::Dispatchable(NodeId id) const {
  const Node& n = NodeRef(id);
  if (n.is_leaf()) {
    return n.leaf->HasDispatchable();
  }
  // Any ready (not-in-service) child flow roots a subtree with no CPU inside it, so a
  // runnable thread there is necessarily off-cpu.
  if (n.sfq->HasBacklog()) {
    return true;
  }
  // An in-service child may still have uncovered work in another part of its subtree.
  for (hfair::FlowId f : n.sfq->InServiceFlows()) {
    if (Dispatchable(n.flow_to_child[f])) {
      return true;
    }
  }
  return false;
}

bool SchedulingStructure::IsRunning(ThreadId thread) const {
  for (const RunningEntry& r : running_) {
    if (r.thread == thread) {
      return true;
    }
  }
  return false;
}

ThreadId SchedulingStructure::Schedule(Time now, int cpu) {
  ++schedule_count_;
  if (!Dispatchable(kRootNode)) {
    return kInvalidThread;
  }
  NodeId cur = kRootNode;
  for (;;) {
    Node& n = NodeRef(cur);
    ++n.in_service_count;
    if (n.is_leaf()) {
      break;
    }
    // Candidates at this level: the ready minimum, plus in-service child flows whose
    // subtrees still hold dispatchable work (another CPU is inside, but has not covered
    // all of it). The minimum (priced start tag, flow id) wins: in-service candidates
    // compete with their in-flight slices priced in (see Sfq::PricedStartTag), so
    // concurrent CPUs spread across flows in weight proportion instead of piling onto
    // whichever flow's raw tag is momentarily lowest. A ready flow carries no
    // surcharge, so on one CPU (no in-service flows at pick time) this is exactly the
    // classic PickNext descent.
    hfair::FlowId best = n.sfq->ReadyTopFlow();
    bool best_is_ready = best != hfair::kInvalidFlow;
    for (hfair::FlowId f : n.sfq->InServiceFlows()) {
      if (!Dispatchable(n.flow_to_child[f])) {
        continue;
      }
      if (best == hfair::kInvalidFlow ||
          n.sfq->PricedStartTag(f) < n.sfq->PricedStartTag(best) ||
          (n.sfq->PricedStartTag(f) == n.sfq->PricedStartTag(best) && f < best)) {
        best = f;
        best_is_ready = false;
      }
    }
    assert(best != hfair::kInvalidFlow && "dispatchable interior node with no candidate");
    // The decision tag, captured before the pick mutates the flow's in-flight count.
    // For a ready pick this is the raw start tag (single-CPU traces are unchanged
    // byte for byte); for a concurrent pick it is the priced tag the comparison used.
    const hscommon::VirtualTime decision_tag = n.sfq->PricedStartTag(best);
    if (best_is_ready) {
      const hfair::FlowId picked = n.sfq->PickNext(now);
      assert(picked == best);
      (void)picked;
    } else {
      n.sfq->PickAgain(best);
    }
    const NodeId child = n.flow_to_child[best];
    if (tracer_ != nullptr) {
      // The picked child's decision tag tracks the node's SFQ virtual time; record its
      // integer part so offline invariant checking can verify it never regresses (on
      // SMP traces: never regresses beyond the bounded in-flight surcharge).
      tracer_->RecordPickChild(now, cur, child,
                               static_cast<int64_t>(decision_tag.IntegerUnits()),
                               static_cast<uint32_t>(cpu));
    }
    cur = child;
  }
  Node& leaf = NodeRef(cur);
  const ThreadId thread = leaf.leaf->PickNext(now);
  assert(thread != kInvalidThread && "dispatchable leaf with no dispatchable thread");
  assert(!IsRunning(thread) && "leaf handed out a thread that is already on a CPU");
  running_.push_back(RunningEntry{thread, cur, cpu});
  if (tracer_ != nullptr) {
    tracer_->RecordSchedule(now, cur, thread, static_cast<uint32_t>(cpu));
  }
  return thread;
}

void SchedulingStructure::Update(ThreadId thread, Work used, Time now, bool still_runnable,
                                 int cpu) {
  ++update_count_;
  size_t idx = running_.size();
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].thread == thread) {
      idx = i;
      break;
    }
  }
  assert(idx < running_.size() && "Update must name a running thread");
  assert(running_[idx].cpu == cpu && "Update must come from the CPU that dispatched");
  (void)cpu;
  const NodeId leaf_id = running_[idx].leaf;
  const bool fast = running_[idx].fast;
  running_.erase(running_.begin() + static_cast<ptrdiff_t>(idx));
  if (tracer_ != nullptr) {
    tracer_->RecordUpdate(now, leaf_id, thread, used, still_runnable,
                          static_cast<uint32_t>(cpu));
  }
  Node& leaf = NodeRef(leaf_id);
  leaf.leaf->Charge(thread, used, now, still_runnable);
  const bool leaf_was_runnable = leaf.runnable;

  if (fast) {
    // Releasing a ScheduleLeaf dispatch: the pick did no interior SFQ work, so the
    // charge does none either — service and in-service counts roll straight up the
    // path. In fast mode a leaf counts as runnable while a CPU is still inside it
    // (its flow stays in every ancestor's ready set while the subtree is active, and
    // EffectiveShare should keep counting a sibling that is consuming service), so
    // only when the last slice drains AND no thread is runnable does the ordinary
    // sleep propagation retract the flow from each ancestor.
    --leaf.in_service_count;
    leaf.total_service += used;
    leaf.runnable = leaf.leaf->HasRunnable() || leaf.in_service_count > 0;
    if (leaf.runnable != leaf_was_runnable) {
      ++state_gen_;
    }
    for (NodeId cur = leaf_id; cur != kRootNode; cur = NodeRef(cur).parent) {
      Node& p = NodeRef(NodeRef(cur).parent);
      --p.in_service_count;
      p.total_service += used;
    }
    assert(leaf_was_runnable && "a fast slice was in service, so the leaf was active");
    if (!leaf.runnable) {
      PropagateSleep(leaf_id, now);
    }
    return;
  }

  leaf.runnable = leaf.leaf->HasRunnable();
  if (leaf.runnable != leaf_was_runnable) {
    ++state_gen_;
  }
  --leaf.in_service_count;
  leaf.total_service += used;

  NodeId cur = leaf_id;
  while (cur != kRootNode) {
    Node& n = NodeRef(cur);
    Node& p = NodeRef(n.parent);
    p.sfq->Complete(n.flow_in_parent, used, now, n.runnable);
    // Another CPU may still be dispatched through p (its flow is in service, not in the
    // ready backlog), so runnability must account for outstanding services — the classic
    // HasBacklog()-only formula silently marked such nodes idle.
    const bool was_runnable = p.runnable;
    p.runnable = p.sfq->HasBacklog() || p.sfq->InServiceCount() > 0;
    if (p.runnable != was_runnable) {
      ++state_gen_;
    }
    --p.in_service_count;
    p.total_service += used;
    cur = n.parent;
  }
}

ThreadId SchedulingStructure::ScheduleLeaf(NodeId leaf_id, Time now, int cpu,
                                           bool* still_dispatchable) {
  ++schedule_count_;
  Node& leaf = NodeRef(leaf_id);
  assert(leaf.is_leaf() && "ScheduleLeaf needs a leaf node");
  if (!leaf.leaf->HasDispatchable()) {
    return kInvalidThread;
  }
  // The shard heap already made the fairness decision, so the interior levels need no
  // SFQ selection or tag surgery — the running child's flow simply STAYS in its
  // parent's ready set (Update's fast walk and PropagateSleep retract it when the
  // subtree really goes idle). Only the in-service counts move: they guard
  // MoveNode/RemoveNode and tell Sleep a subtree has a CPU inside it.
  for (NodeId cur = leaf_id; cur != kRootNode; cur = NodeRef(cur).parent) {
    ++NodeRef(cur).in_service_count;
  }
  ++NodeRef(kRootNode).in_service_count;
  const ThreadId thread = leaf.leaf->PickNext(now);
  assert(thread != kInvalidThread && "dispatchable leaf with no dispatchable thread");
  assert(!IsRunning(thread) && "leaf handed out a thread that is already on a CPU");
  if (still_dispatchable != nullptr) {
    *still_dispatchable = leaf.leaf->HasDispatchable();  // leaf is hot right here
  }
  running_.push_back(RunningEntry{thread, leaf_id, cpu, /*fast=*/true});
  if (tracer_ != nullptr) {
    tracer_->RecordSchedule(now, leaf_id, thread, static_cast<uint32_t>(cpu));
  }
  return thread;
}

bool SchedulingStructure::LeafDispatchable(NodeId node) const {
  if (node >= nodes_.size() || !nodes_[node].in_use || !nodes_[node].is_leaf()) {
    return false;
  }
  return nodes_[node].leaf->HasDispatchable();
}

std::vector<NodeId> SchedulingStructure::DispatchableLeaves() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.in_use && n.is_leaf() && n.leaf->HasDispatchable()) {
      out.push_back(id);
    }
  }
  return out;
}

double SchedulingStructure::EffectiveShare(NodeId leaf) const {
  double share = 1.0;
  NodeId cur = leaf;
  while (cur != kRootNode) {
    const Node& n = NodeRef(cur);
    const Node& p = NodeRef(n.parent);
    Weight sum = 0;
    for (NodeId sibling : p.children) {
      if (sibling == cur || nodes_[sibling].runnable) {
        sum += nodes_[sibling].weight;
      }
    }
    assert(sum >= n.weight);
    share *= static_cast<double>(n.weight) / static_cast<double>(sum);
    cur = n.parent;
  }
  return share;
}

bool SchedulingStructure::HasRunnable() const { return NodeRef(kRootNode).runnable; }

StatusOr<NodeId> SchedulingStructure::LeafOf(ThreadId thread) const {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return it->second;
}

std::string SchedulingStructure::PathOf(NodeId node) const {
  if (node == kRootNode) {
    return "/";
  }
  std::vector<const std::string*> parts;
  NodeId cur = node;
  while (cur != kRootNode) {
    const Node& n = NodeRef(cur);
    parts.push_back(&n.name);
    cur = n.parent;
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path += '/';
    path += **it;
  }
  return path;
}

NodeId SchedulingStructure::ParentOf(NodeId node) const { return NodeRef(node).parent; }

bool SchedulingStructure::IsLeaf(NodeId node) const { return NodeRef(node).is_leaf(); }

std::vector<NodeId> SchedulingStructure::ChildrenOf(NodeId node) const {
  return NodeRef(node).children;
}

LeafScheduler* SchedulingStructure::LeafSchedulerOf(NodeId leaf) const {
  return NodeRef(leaf).leaf.get();
}

Work SchedulingStructure::PreferredQuantumOf(ThreadId thread) const {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return 0;
  }
  return NodeRef(it->second).leaf->PreferredQuantum(thread);
}

StatusOr<Work> SchedulingStructure::ServiceOf(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return NodeRef(node).total_service;
}

hscommon::VirtualTime SchedulingStructure::StartTagOf(NodeId child) const {
  const Node& n = NodeRef(child);
  assert(n.parent != kInvalidNode);
  return NodeRef(n.parent).sfq->StartTag(n.flow_in_parent);
}

hscommon::VirtualTime SchedulingStructure::FinishTagOf(NodeId child) const {
  const Node& n = NodeRef(child);
  assert(n.parent != kInvalidNode);
  return NodeRef(n.parent).sfq->FinishTag(n.flow_in_parent);
}

std::string SchedulingStructure::DebugString() const {
  std::string out;
  // Depth-first walk with explicit stack of (node, depth).
  std::vector<std::pair<NodeId, int>> stack{{kRootNode, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& n = NodeRef(id);
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += id == kRootNode ? "/" : n.name;
    out += " (w=" + std::to_string(n.weight);
    if (n.is_leaf()) {
      out += ", " + n.leaf->Name();
      out += ", threads=" + std::to_string(n.thread_count);
    }
    if (n.runnable) {
      out += ", runnable";
    }
    if (n.in_service()) {
      out += ", IN-SERVICE";
      if (n.in_service_count > 1) {
        out += " x" + std::to_string(n.in_service_count);
      }
    }
    if (id != kRootNode) {
      out += ", S=" + NodeRef(n.parent).sfq->StartTag(n.flow_in_parent).ToString();
      out += ", F=" + NodeRef(n.parent).sfq->FinishTag(n.flow_in_parent).ToString();
    }
    out += ")\n";
    // Push children in reverse so they render in creation order.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

Status SchedulingStructure::CheckInvariants() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.in_use) {
      continue;
    }
    // Parent/child mutual consistency.
    if (id != kRootNode) {
      if (n.parent >= nodes_.size() || !nodes_[n.parent].in_use) {
        return Internal("node " + std::to_string(id) + " has a dead parent");
      }
      const Node& p = nodes_[n.parent];
      bool found = false;
      for (NodeId c : p.children) {
        found = found || c == id;
      }
      if (!found) {
        return Internal("node " + std::to_string(id) + " missing from parent's children");
      }
      if (p.flow_to_child.size() <= n.flow_in_parent ||
          p.flow_to_child[n.flow_in_parent] != id) {
        return Internal("node " + std::to_string(id) + " has a stale flow mapping");
      }
      if (p.sfq->GetWeight(n.flow_in_parent) != n.weight) {
        return Internal("node " + std::to_string(id) + " weight disagrees with parent SFQ");
      }
    }
    if (n.weight < 1) {
      return Internal("node " + std::to_string(id) + " has zero weight");
    }
    if (n.is_leaf() && !n.children.empty()) {
      return Internal("leaf node " + std::to_string(id) + " has children");
    }
    // Runnability consistency.
    if (n.is_leaf()) {
      const bool expect = n.leaf->HasRunnable();
      if (n.runnable != expect) {
        return Internal("leaf " + PathOf(id) + " runnable flag is stale");
      }
    } else {
      bool any_child_runnable = false;
      for (NodeId c : n.children) {
        any_child_runnable = any_child_runnable || nodes_[c].runnable;
      }
      if (n.runnable != any_child_runnable) {
        return Internal("interior " + PathOf(id) + " runnable flag is stale");
      }
    }
  }
  for (const auto& [thread, leaf] : thread_to_leaf_) {
    if (leaf >= nodes_.size() || !nodes_[leaf].in_use || !nodes_[leaf].is_leaf()) {
      return Internal("thread " + std::to_string(thread) + " maps to a non-leaf");
    }
  }
  return Status::Ok();
}

}  // namespace hsfq
