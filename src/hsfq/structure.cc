#include "src/hsfq/structure.h"

#include <cassert>

#include "src/common/virtual_time.h"

namespace hsfq {

using hscommon::AlreadyExists;
using hscommon::FailedPrecondition;
using hscommon::Internal;
using hscommon::InvalidArgument;
using hscommon::NotFound;

SchedulingStructure::SchedulingStructure() {
  const NodeId root = AllocateNode();
  assert(root == kRootNode);
  Node& n = nodes_[root];
  n.name = "";
  n.parent = kInvalidNode;
  n.weight = 1;
  n.sfq = std::make_unique<hfair::Sfq>();
}

SchedulingStructure::~SchedulingStructure() = default;

NodeId SchedulingStructure::AllocateNode() {
  ++node_count_;
  if (!free_nodes_.empty()) {
    const NodeId id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    nodes_[id].in_use = true;
    return id;
  }
  nodes_.emplace_back();
  nodes_.back().in_use = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

SchedulingStructure::Node& SchedulingStructure::NodeRef(NodeId id) {
  assert(id < nodes_.size() && nodes_[id].in_use);
  return nodes_[id];
}

const SchedulingStructure::Node& SchedulingStructure::NodeRef(NodeId id) const {
  assert(id < nodes_.size() && nodes_[id].in_use);
  return nodes_[id];
}

Status SchedulingStructure::ValidateLiveNode(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].in_use) {
    return NotFound("no such node id " + std::to_string(id));
  }
  return Status::Ok();
}

StatusOr<NodeId> SchedulingStructure::MakeNode(const std::string& name, NodeId parent,
                                               Weight weight,
                                               std::unique_ptr<LeafScheduler> leaf_scheduler) {
  if (Status s = ValidateLiveNode(parent); !s.ok()) {
    return s;
  }
  if (name.empty() || name.find('/') != std::string::npos || name == "." || name == "..") {
    return InvalidArgument("node name must be one non-empty path component: '" + name + "'");
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  Node& p = NodeRef(parent);
  if (p.is_leaf()) {
    return FailedPrecondition("parent '" + PathOf(parent) + "' is a leaf node");
  }
  for (NodeId sibling : p.children) {
    if (NodeRef(sibling).name == name) {
      return AlreadyExists("node '" + PathOf(sibling) + "' already exists");
    }
  }

  const NodeId id = AllocateNode();
  Node& n = nodes_[id];
  n.name = name;
  n.parent = parent;
  n.weight = weight;
  if (leaf_scheduler != nullptr) {
    n.leaf = std::move(leaf_scheduler);
  } else {
    n.sfq = std::make_unique<hfair::Sfq>();
  }
  // Register the new node as a flow of its parent's SFQ instance.
  Node& parent_ref = NodeRef(parent);  // re-fetch: AllocateNode may have reallocated
  n.flow_in_parent = parent_ref.sfq->AddFlow(weight);
  if (parent_ref.flow_to_child.size() <= n.flow_in_parent) {
    parent_ref.flow_to_child.resize(n.flow_in_parent + 1, kInvalidNode);
  }
  parent_ref.flow_to_child[n.flow_in_parent] = id;
  parent_ref.children.push_back(id);
  if (tracer_ != nullptr) {
    tracer_->RecordMakeNode(0, id, parent, weight, n.is_leaf(), name);
  }
  return id;
}

StatusOr<NodeId> SchedulingStructure::Parse(const std::string& path, NodeId hint) const {
  if (path.empty()) {
    return InvalidArgument("empty path");
  }
  NodeId cur;
  size_t pos = 0;
  if (path[0] == '/') {
    cur = kRootNode;
    pos = 1;
  } else {
    if (Status s = ValidateLiveNode(hint); !s.ok()) {
      return s;
    }
    cur = hint;
  }
  while (pos < path.size()) {
    const size_t next = path.find('/', pos);
    const std::string component =
        path.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next == std::string::npos ? path.size() : next + 1;
    if (component.empty() || component == ".") {
      continue;
    }
    const Node& n = NodeRef(cur);
    if (component == "..") {
      cur = n.parent == kInvalidNode ? kRootNode : n.parent;
      continue;
    }
    NodeId found = kInvalidNode;
    for (NodeId child : n.children) {
      if (NodeRef(child).name == component) {
        found = child;
        break;
      }
    }
    if (found == kInvalidNode) {
      return NotFound("no node '" + component + "' under '" + PathOf(cur) + "'");
    }
    cur = found;
  }
  return cur;
}

Status SchedulingStructure::RemoveNode(NodeId node) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (node == kRootNode) {
    return FailedPrecondition("cannot remove the root node");
  }
  Node& n = NodeRef(node);
  if (!n.children.empty()) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has children");
  }
  if (n.thread_count > 0) {
    return FailedPrecondition("node '" + PathOf(node) + "' still has threads");
  }
  if (n.in_service) {
    return FailedPrecondition("node '" + PathOf(node) + "' is being dispatched");
  }
  assert(!n.runnable && "a node with no threads cannot be runnable");

  Node& p = NodeRef(n.parent);
  p.sfq->RemoveFlow(n.flow_in_parent);
  p.flow_to_child[n.flow_in_parent] = kInvalidNode;
  std::erase(p.children, node);

  nodes_[node] = Node{};
  free_nodes_.push_back(node);
  --node_count_;
  if (tracer_ != nullptr) {
    tracer_->RecordRemoveNode(0, node);
  }
  return Status::Ok();
}

Status SchedulingStructure::AttachThread(ThreadId thread, NodeId leaf,
                                         const ThreadParams& params) {
  if (Status s = ValidateLiveNode(leaf); !s.ok()) {
    return s;
  }
  Node& n = NodeRef(leaf);
  if (!n.is_leaf()) {
    return FailedPrecondition("node '" + PathOf(leaf) + "' is not a leaf");
  }
  if (thread_to_leaf_.contains(thread)) {
    return AlreadyExists("thread " + std::to_string(thread) + " is already attached");
  }
  if (Status s = n.leaf->AddThread(thread, params); !s.ok()) {
    return s;
  }
  thread_to_leaf_.emplace(thread, leaf);
  ++n.thread_count;
  if (tracer_ != nullptr) {
    tracer_->RecordAttachThread(0, leaf, thread, params.weight);
  }
  return Status::Ok();
}

Status SchedulingStructure::DetachThread(ThreadId thread) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (thread == running_thread_) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const NodeId leaf_id = it->second;
  Node& n = NodeRef(leaf_id);
  const bool was_runnable = n.leaf->IsThreadRunnable(thread);
  n.leaf->RemoveThread(thread);
  --n.thread_count;
  thread_to_leaf_.erase(it);
  if (was_runnable && n.runnable && !n.in_service && !n.leaf->HasRunnable()) {
    PropagateSleep(leaf_id, /*now=*/0);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordDetachThread(0, leaf_id, thread);
  }
  return Status::Ok();
}

Status SchedulingStructure::MoveThread(ThreadId thread, NodeId to, const ThreadParams& params,
                                       Time now) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  if (Status s = ValidateLiveNode(to); !s.ok()) {
    return s;
  }
  if (!NodeRef(to).is_leaf()) {
    return FailedPrecondition("destination '" + PathOf(to) + "' is not a leaf");
  }
  if (thread == running_thread_) {
    return FailedPrecondition("thread " + std::to_string(thread) + " is running");
  }
  const bool was_runnable = NodeRef(it->second).leaf->IsThreadRunnable(thread);
  if (Status s = DetachThread(thread); !s.ok()) {
    return s;
  }
  if (Status s = AttachThread(thread, to, params); !s.ok()) {
    return s;
  }
  if (tracer_ != nullptr) {
    tracer_->RecordMoveThread(now, to, thread);
  }
  if (was_runnable) {
    SetRun(thread, now);
  }
  return Status::Ok();
}

Status SchedulingStructure::SetNodeWeight(NodeId node, Weight weight) {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  if (weight < 1) {
    return InvalidArgument("node weight must be >= 1");
  }
  Node& n = NodeRef(node);
  n.weight = weight;
  if (n.parent != kInvalidNode) {
    NodeRef(n.parent).sfq->SetWeight(n.flow_in_parent, weight);
  }
  if (tracer_ != nullptr) {
    tracer_->RecordSetWeight(0, node, weight);
  }
  return Status::Ok();
}

StatusOr<Weight> SchedulingStructure::GetNodeWeight(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return NodeRef(node).weight;
}

Status SchedulingStructure::SetThreadParams(ThreadId thread, const ThreadParams& params) {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return NodeRef(it->second).leaf->SetThreadParams(thread, params);
}

void SchedulingStructure::PropagateRunnable(NodeId node, Time now) {
  // Walk up, stamping SFQ arrivals, until an already-runnable ancestor is found
  // (the paper's hsfq_setrun early-stop).
  NodeId cur = node;
  for (;;) {
    Node& n = NodeRef(cur);
    n.runnable = true;
    if (cur == kRootNode) {
      return;
    }
    Node& p = NodeRef(n.parent);
    p.sfq->Arrive(n.flow_in_parent, now);
    if (p.runnable) {
      return;
    }
    cur = n.parent;
  }
}

void SchedulingStructure::PropagateSleep(NodeId node, Time now) {
  (void)now;
  // Walk up, retracting SFQ arrivals, while ancestors lose their last runnable child
  // (the paper's hsfq_sleep early-stop).
  NodeId cur = node;
  for (;;) {
    Node& n = NodeRef(cur);
    n.runnable = false;
    if (cur == kRootNode) {
      return;
    }
    Node& p = NodeRef(n.parent);
    p.sfq->Depart(n.flow_in_parent);
    if (p.sfq->HasBacklog() || p.sfq->InService() != hfair::kInvalidFlow) {
      return;  // the parent still has another runnable child
    }
    cur = n.parent;
  }
}

void SchedulingStructure::SetRun(ThreadId thread, Time now) {
  const auto it = thread_to_leaf_.find(thread);
  assert(it != thread_to_leaf_.end() && "SetRun on unattached thread");
  if (tracer_ != nullptr) {
    tracer_->RecordSetRun(now, it->second, thread);
  }
  Node& n = NodeRef(it->second);
  n.leaf->ThreadRunnable(thread, now);
  if (!n.runnable) {
    PropagateRunnable(it->second, now);
  }
}

void SchedulingStructure::Sleep(ThreadId thread, Time now) {
  const auto it = thread_to_leaf_.find(thread);
  assert(it != thread_to_leaf_.end() && "Sleep on unattached thread");
  assert(thread != running_thread_ && "a running thread blocks via Update instead");
  if (tracer_ != nullptr) {
    tracer_->RecordSleep(now, it->second, thread);
  }
  Node& n = NodeRef(it->second);
  n.leaf->ThreadBlocked(thread, now);
  if (n.runnable && !n.in_service && !n.leaf->HasRunnable()) {
    PropagateSleep(it->second, now);
  }
}

ThreadId SchedulingStructure::Schedule(Time now) {
  ++schedule_count_;
  assert(running_thread_ == kInvalidThread && "previous dispatch was not Updated");
  if (!NodeRef(kRootNode).runnable) {
    return kInvalidThread;
  }
  NodeId cur = kRootNode;
  for (;;) {
    Node& n = NodeRef(cur);
    n.in_service = true;
    if (n.is_leaf()) {
      break;
    }
    const hfair::FlowId flow = n.sfq->PickNext(now);
    assert(flow != hfair::kInvalidFlow && "runnable interior node with empty backlog");
    const NodeId child = n.flow_to_child[flow];
    if (tracer_ != nullptr) {
      // The picked child's start tag is the node's SFQ virtual time; record its integer
      // part so offline invariant checking can verify it never regresses.
      tracer_->RecordPickChild(now, cur, child,
                               static_cast<int64_t>(n.sfq->StartTag(flow).IntegerUnits()));
    }
    cur = child;
  }
  Node& leaf = NodeRef(cur);
  const ThreadId thread = leaf.leaf->PickNext(now);
  assert(thread != kInvalidThread && "runnable leaf with no runnable thread");
  running_thread_ = thread;
  running_leaf_ = cur;
  if (tracer_ != nullptr) {
    tracer_->RecordSchedule(now, cur, thread);
  }
  return thread;
}

void SchedulingStructure::Update(ThreadId thread, Work used, Time now, bool still_runnable) {
  ++update_count_;
  assert(thread == running_thread_ && "Update must name the running thread");
  if (tracer_ != nullptr) {
    tracer_->RecordUpdate(now, running_leaf_, thread, used, still_runnable);
  }
  Node& leaf = NodeRef(running_leaf_);
  leaf.leaf->Charge(thread, used, now, still_runnable);
  leaf.runnable = leaf.leaf->HasRunnable();
  leaf.in_service = false;
  leaf.total_service += used;

  NodeId cur = running_leaf_;
  while (cur != kRootNode) {
    Node& n = NodeRef(cur);
    Node& p = NodeRef(n.parent);
    p.sfq->Complete(n.flow_in_parent, used, now, n.runnable);
    p.runnable = p.sfq->HasBacklog();
    p.in_service = false;
    p.total_service += used;
    cur = n.parent;
  }
  running_thread_ = kInvalidThread;
  running_leaf_ = kInvalidNode;
}

bool SchedulingStructure::HasRunnable() const { return NodeRef(kRootNode).runnable; }

StatusOr<NodeId> SchedulingStructure::LeafOf(ThreadId thread) const {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return NotFound("thread " + std::to_string(thread) + " is not attached");
  }
  return it->second;
}

std::string SchedulingStructure::PathOf(NodeId node) const {
  if (node == kRootNode) {
    return "/";
  }
  std::vector<const std::string*> parts;
  NodeId cur = node;
  while (cur != kRootNode) {
    const Node& n = NodeRef(cur);
    parts.push_back(&n.name);
    cur = n.parent;
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path += '/';
    path += **it;
  }
  return path;
}

NodeId SchedulingStructure::ParentOf(NodeId node) const { return NodeRef(node).parent; }

bool SchedulingStructure::IsLeaf(NodeId node) const { return NodeRef(node).is_leaf(); }

std::vector<NodeId> SchedulingStructure::ChildrenOf(NodeId node) const {
  return NodeRef(node).children;
}

LeafScheduler* SchedulingStructure::LeafSchedulerOf(NodeId leaf) const {
  return NodeRef(leaf).leaf.get();
}

Work SchedulingStructure::PreferredQuantumOf(ThreadId thread) const {
  const auto it = thread_to_leaf_.find(thread);
  if (it == thread_to_leaf_.end()) {
    return 0;
  }
  return NodeRef(it->second).leaf->PreferredQuantum(thread);
}

StatusOr<Work> SchedulingStructure::ServiceOf(NodeId node) const {
  if (Status s = ValidateLiveNode(node); !s.ok()) {
    return s;
  }
  return NodeRef(node).total_service;
}

hscommon::VirtualTime SchedulingStructure::StartTagOf(NodeId child) const {
  const Node& n = NodeRef(child);
  assert(n.parent != kInvalidNode);
  return NodeRef(n.parent).sfq->StartTag(n.flow_in_parent);
}

hscommon::VirtualTime SchedulingStructure::FinishTagOf(NodeId child) const {
  const Node& n = NodeRef(child);
  assert(n.parent != kInvalidNode);
  return NodeRef(n.parent).sfq->FinishTag(n.flow_in_parent);
}

std::string SchedulingStructure::DebugString() const {
  std::string out;
  // Depth-first walk with explicit stack of (node, depth).
  std::vector<std::pair<NodeId, int>> stack{{kRootNode, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& n = NodeRef(id);
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += id == kRootNode ? "/" : n.name;
    out += " (w=" + std::to_string(n.weight);
    if (n.is_leaf()) {
      out += ", " + n.leaf->Name();
      out += ", threads=" + std::to_string(n.thread_count);
    }
    if (n.runnable) {
      out += ", runnable";
    }
    if (n.in_service) {
      out += ", IN-SERVICE";
    }
    if (id != kRootNode) {
      out += ", S=" + NodeRef(n.parent).sfq->StartTag(n.flow_in_parent).ToString();
      out += ", F=" + NodeRef(n.parent).sfq->FinishTag(n.flow_in_parent).ToString();
    }
    out += ")\n";
    // Push children in reverse so they render in creation order.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

Status SchedulingStructure::CheckInvariants() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.in_use) {
      continue;
    }
    // Parent/child mutual consistency.
    if (id != kRootNode) {
      if (n.parent >= nodes_.size() || !nodes_[n.parent].in_use) {
        return Internal("node " + std::to_string(id) + " has a dead parent");
      }
      const Node& p = nodes_[n.parent];
      bool found = false;
      for (NodeId c : p.children) {
        found = found || c == id;
      }
      if (!found) {
        return Internal("node " + std::to_string(id) + " missing from parent's children");
      }
      if (p.flow_to_child.size() <= n.flow_in_parent ||
          p.flow_to_child[n.flow_in_parent] != id) {
        return Internal("node " + std::to_string(id) + " has a stale flow mapping");
      }
      if (p.sfq->GetWeight(n.flow_in_parent) != n.weight) {
        return Internal("node " + std::to_string(id) + " weight disagrees with parent SFQ");
      }
    }
    if (n.weight < 1) {
      return Internal("node " + std::to_string(id) + " has zero weight");
    }
    if (n.is_leaf() && !n.children.empty()) {
      return Internal("leaf node " + std::to_string(id) + " has children");
    }
    // Runnability consistency.
    if (n.is_leaf()) {
      const bool expect = n.leaf->HasRunnable();
      if (n.runnable != expect) {
        return Internal("leaf " + PathOf(id) + " runnable flag is stale");
      }
    } else {
      bool any_child_runnable = false;
      for (NodeId c : n.children) {
        any_child_runnable = any_child_runnable || nodes_[c].runnable;
      }
      if (n.runnable != any_child_runnable) {
        return Internal("interior " + PathOf(id) + " runnable flag is stale");
      }
    }
  }
  for (const auto& [thread, leaf] : thread_to_leaf_) {
    if (leaf >= nodes_.size() || !nodes_[leaf].in_use || !nodes_[leaf].is_leaf()) {
      return Internal("thread " + std::to_string(thread) + " maps to a non-leaf");
    }
  }
  return Status::Ok();
}

}  // namespace hsfq
