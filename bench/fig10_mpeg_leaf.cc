// Figure 10: SFQ as a leaf scheduler — two threads running the MPEG video player with
// weights 5 and 10 in node SFQ-1. "The thread with weight 10 decodes twice as many
// frames as the other thread in any time interval."

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/mpeg/player.h"
#include "src/mpeg/trace.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  const std::string trace_base = hbench::TraceBase(argc, argv);
  const auto tracer = hbench::MaybeTracer(trace_base);
  std::printf("Figure 10: frames decoded by MPEG players with weights 5 and 10\n");

  hmpeg::VbrTraceConfig tc;
  tc.frame_count = 3000;
  const hmpeg::VbrTrace trace = hmpeg::VbrTrace::Generate(tc);

  hsim::System sys;
  sys.SetTracer(tracer.get());
  const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  auto p5 = std::make_unique<hmpeg::MpegPlayerWorkload>(&trace,
                                                        hmpeg::MpegPlayerWorkload::Config{});
  auto p10 = std::make_unique<hmpeg::MpegPlayerWorkload>(
      &trace, hmpeg::MpegPlayerWorkload::Config{});
  hmpeg::MpegPlayerWorkload* w5 = p5.get();
  hmpeg::MpegPlayerWorkload* w10 = p10.get();
  (void)*sys.CreateThread("player-w5", sfq1, {.weight = 5}, std::move(p5));
  (void)*sys.CreateThread("player-w10", sfq1, {.weight = 10}, std::move(p10));

  TextTable table({"second", "frames_w5", "frames_w10", "ratio"});
  hscommon::RunningStats ratios;
  sys.Every(kSecond, kSecond, [&](hsim::System& s) {
    const auto f5 = static_cast<double>(w5->frames_decoded());
    const auto f10 = static_cast<double>(w10->frames_decoded());
    const double ratio = f5 > 0 ? f10 / f5 : 0.0;
    ratios.Add(ratio);
    table.AddRow({TextTable::Int(s.now() / kSecond), TextTable::Num(f5, 0),
                  TextTable::Num(f10, 0), TextTable::Num(ratio, 3)});
  });
  sys.RunUntil(60 * kSecond + kMillisecond);

  hbench::Emit(table, "cumulative frames decoded vs time", csv_dir, "fig10_frames");
  std::printf("\nPaper's shape: the weight-10 player decodes twice as many frames as the "
              "weight-5 player in any interval.\n");
  std::printf("Reproduced:    final ratio %.3f, per-second mean %.3f -> %s\n",
              static_cast<double>(w10->frames_decoded()) /
                  static_cast<double>(w5->frames_decoded()),
              ratios.mean(), std::abs(ratios.mean() - 2.0) < 0.2 ? "yes" : "NO");
  hbench::ExportTrace(tracer.get(), trace_base);
  return 0;
}
