// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig* binary prints the paper-style table(s) on stdout and, when invoked with
// `--csv <dir>`, mirrors each table to <dir>/<name>.csv for plotting.

#ifndef HSCHED_BENCH_BENCH_UTIL_H_
#define HSCHED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/common/table.h"

namespace hbench {

// Parses `--csv <dir>` from argv; empty string when absent.
inline std::string CsvDir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      return argv[i + 1];
    }
  }
  return "";
}

// Prints the table under a heading and optionally mirrors it to CSV.
inline void Emit(const hscommon::TextTable& table, const std::string& title,
                 const std::string& csv_dir, const std::string& csv_name) {
  std::printf("\n== %s ==\n", title.c_str());
  table.Print();
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + csv_name + ".csv";
    if (table.WriteCsv(path)) {
      std::printf("(csv: %s)\n", path.c_str());
    } else {
      std::printf("(csv write FAILED: %s)\n", path.c_str());
    }
  }
}

}  // namespace hbench

#endif  // HSCHED_BENCH_BENCH_UTIL_H_
