// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig* binary prints the paper-style table(s) on stdout and, when invoked with
// `--csv <dir>`, mirrors each table to <dir>/<name>.csv for plotting.

#ifndef HSCHED_BENCH_BENCH_UTIL_H_
#define HSCHED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/table.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/trace/perfetto_export.h"
#include "src/trace/trace_io.h"
#include "src/trace/tracer.h"

namespace hbench {

// Parses `--csv <dir>` from argv; empty string when absent.
inline std::string CsvDir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      return argv[i + 1];
    }
  }
  return "";
}

// Parses `--trace=<base>` (or `--trace <base>`) from argv; empty string when absent.
// `base` is a path prefix: the bench writes <base>.trace (binary) and <base>.json
// (Perfetto), see ExportTrace below.
inline std::string TraceBase(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      return arg.substr(8);
    }
    if (arg == "--trace" && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return "";
}

// Parses `--cpus=N` (or `--cpus N`) from argv; 1 (the single-CPU machine) when
// absent. Exits on a malformed count — a bench silently falling back to one CPU
// would masquerade as an SMP run.
inline int Cpus(int argc, char** argv) {
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cpus=", 0) == 0) {
      value = arg.substr(7);
    } else if (arg == "--cpus" && i + 1 < argc) {
      value = argv[i + 1];
    }
  }
  if (value.empty()) {
    return 1;
  }
  const int n = std::atoi(value.c_str());
  if (n < 1 || n > 64) {
    std::fprintf(stderr, "bad --cpus=%s (want 1..64)\n", value.c_str());
    std::exit(2);
  }
  return n;
}

// True when the plain flag `name` (e.g. "--sharded") appears in argv.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) {
      return true;
    }
  }
  return false;
}

// Parses `--sharded`: dispatch through per-CPU run-queue shards (src/sim/shard.h)
// instead of the shared-tree SMP path. Defaults to the shared tree.
inline bool Sharded(int argc, char** argv) { return HasFlag(argc, argv, "--sharded"); }

// Parses `--no-steal`: with --sharded, disables idle/fairness work stealing (the
// work-conservation ablation). Stealing is on by default.
inline bool Steal(int argc, char** argv) { return !HasFlag(argc, argv, "--no-steal"); }

// Parses `--fault=<spec>` (or `--fault <spec>`) from argv; empty string when absent.
// The spec grammar is FaultPlan::Parse's, e.g.
//   --fault='seed=42;drop-wakeup:p=0.05,recovery=20ms'
inline std::string FaultArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fault=", 0) == 0) {
      return arg.substr(8);
    }
    if (arg == "--fault" && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return "";
}

// Parses `spec` and arms the resulting fault plan on `system`. Returns the injector
// (which must outlive the system's run) or null when the spec is empty. A malformed
// spec prints the parse error and exits — a bench run with a silently ignored fault
// flag would masquerade as a faulted run.
inline std::unique_ptr<hsfault::FaultInjector> MaybeFault(const std::string& spec,
                                                          hsim::System& system) {
  if (spec.empty()) {
    return nullptr;
  }
  auto plan = hsfault::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "bad --fault spec: %s\n", plan.status().ToString().c_str());
    std::exit(2);
  }
  auto injector = std::make_unique<hsfault::FaultInjector>(*std::move(plan));
  injector->Arm(system);
  std::printf("(fault plan armed: %s)\n", injector->plan().ToString().c_str());
  return injector;
}

// Prints how often each armed fault kind actually fired. No-op when null.
inline void ReportFaults(const hsfault::FaultInjector* injector) {
  if (injector == nullptr) {
    return;
  }
  const auto& s = injector->stats();
  std::printf("(faults fired: %llu — dropped-wake %llu, delayed-wake %llu, "
              "spurious-wake %llu, jittered-quanta %llu, cswitch-spikes %llu, "
              "storms %llu, api-failures %llu, crashes %llu)\n",
              static_cast<unsigned long long>(s.total()),
              static_cast<unsigned long long>(s.dropped_wakeups),
              static_cast<unsigned long long>(s.delayed_wakeups),
              static_cast<unsigned long long>(s.spurious_wakes),
              static_cast<unsigned long long>(s.jittered_quanta),
              static_cast<unsigned long long>(s.cswitch_spikes),
              static_cast<unsigned long long>(s.storms_armed),
              static_cast<unsigned long long>(s.api_failures),
              static_cast<unsigned long long>(s.crashes));
}

// A tracer when `--trace` was given, null otherwise. Attach the result (if non-null) to
// a System with SetTracer BEFORE building the scheduling tree. `ncpus` must match the
// machine's Config::ncpus so every CPU records into its own ring.
inline std::unique_ptr<htrace::Tracer> MaybeTracer(const std::string& trace_base,
                                                   int ncpus = 1) {
  if (trace_base.empty()) {
    return nullptr;
  }
  return std::make_unique<htrace::Tracer>(htrace::Tracer::kDefaultCapacity, ncpus);
}

// Writes <base>.trace (binary, replayable) and <base>.json (load in ui.perfetto.dev).
// No-op when the tracer is null.
inline void ExportTrace(const htrace::Tracer* tracer, const std::string& trace_base) {
  if (tracer == nullptr || trace_base.empty()) {
    return;
  }
  const std::string bin = trace_base + ".trace";
  const std::string json = trace_base + ".json";
  const auto bin_status = htrace::WriteTraceFile(*tracer, bin);
  const auto json_status = htrace::ExportPerfettoJson(*tracer, json);
  std::printf("(trace: %s%s)\n", bin.c_str(),
              bin_status.ok() ? "" : " WRITE FAILED");
  std::printf("(perfetto: %s%s — load in ui.perfetto.dev)\n", json.c_str(),
              json_status.ok() ? "" : " WRITE FAILED");
}

// Prints the table under a heading and optionally mirrors it to CSV.
inline void Emit(const hscommon::TextTable& table, const std::string& title,
                 const std::string& csv_dir, const std::string& csv_name) {
  std::printf("\n== %s ==\n", title.c_str());
  table.Print();
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + csv_name + ".csv";
    if (table.WriteCsv(path)) {
      std::printf("(csv: %s)\n", path.c_str());
    } else {
      std::printf("(csv write FAILED: %s)\n", path.c_str());
    }
  }
}

}  // namespace hbench

#endif  // HSCHED_BENCH_BENCH_UTIL_H_
