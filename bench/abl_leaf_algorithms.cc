// Ablation: the whole fair-queuing family as leaf-class schedulers inside the hierarchy,
// under a realistic mixed workload (CPU hogs with unequal weights + an interactive
// thread). Reports weighted-fairness accuracy and interactive scheduling latency —
// the two qualities the paper's §6 comparison argues SFQ combines best.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/fair/make.h"
#include "src/sched/fair_leaf.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

namespace {

constexpr hscommon::Work kQuantum = 10 * kMillisecond;

struct Result {
  double ratio_err;     // relative error of the 3:1 hog service ratio
  double latency_mean;  // interactive thread's mean dispatch latency (ms)
  double latency_max;
};

Result RunOnce(hfair::Algorithm alg) {
  hsim::System sys(hsim::System::Config{.default_quantum = kQuantum});
  auto node = sys.tree().MakeNode(
      "leaf", hsfq::kRootNode, 1,
      std::make_unique<hleaf::FairLeafScheduler>(hfair::MakeFairQueue(alg, kQuantum, 7)));
  auto heavy = sys.CreateThread("heavy", *node, {.weight = 3},
                                std::make_unique<hsim::CpuBoundWorkload>());
  auto light = sys.CreateThread("light", *node, {.weight = 1},
                                std::make_unique<hsim::CpuBoundWorkload>());
  auto interactive = sys.CreateThread(
      "interactive", *node, {.weight = 1},
      std::make_unique<hsim::InteractiveWorkload>(3, 50 * kMillisecond, 2 * kMillisecond));
  sys.AddInterruptSource({.arrival = hsim::InterruptSourceConfig::Arrival::kPoisson,
                          .interval = 8 * kMillisecond,
                          .service = 200 * hscommon::kMicrosecond,
                          .exponential_service = true,
                          .seed = 5});
  sys.RunUntil(60 * kSecond);
  const double ratio = static_cast<double>(sys.StatsOf(*heavy).total_service) /
                       static_cast<double>(sys.StatsOf(*light).total_service);
  const auto& lat = sys.StatsOf(*interactive).sched_latency;
  return Result{std::fabs(ratio - 3.0) / 3.0, lat.mean() / 1e6, lat.max() / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Ablation: every fair-queuing algorithm as a leaf-class scheduler\n");
  std::printf("Workload: hogs with weights 3:1 plus an interactive thread; Poisson "
              "interrupts; 60 s.\n");

  TextTable table(
      {"leaf_algorithm", "hog_ratio_err_%", "interactive_lat_mean_ms", "lat_max_ms"});
  for (const hfair::Algorithm alg : hfair::AllAlgorithms()) {
    const Result r = RunOnce(alg);
    table.AddRow({hfair::AlgorithmName(alg), TextTable::Num(100.0 * r.ratio_err, 2),
                  TextTable::Num(r.latency_mean, 2), TextTable::Num(r.latency_max, 2)});
  }
  hbench::Emit(table, "fairness accuracy and interactive latency by leaf algorithm",
               csv_dir, "abl_leaf_algorithms");

  std::printf("\nPaper's shape: the start-tag-ordered, self-clocked algorithms (SFQ/FQS)"
              " deliver accurate weighted sharing AND low latency for the low-throughput"
              " interactive thread; finish-tag algorithms delay it, and lottery is only "
              "accurate in expectation.\n");
  return 0;
}
