// Figure 9: hard real-time behaviour inside the hierarchy.
// Two rate-monotonic threads in the RT class of the SVR4 node — thread1: 10 ms every
// 60 ms; thread2: 150 ms every 960 ms — with an MPEG decoder in the SFQ-1 node; SVR4 and
// SFQ-1 nodes have equal weights; 25 ms quanta.
//  (a) thread1's scheduling latency (wakeup -> dispatch) stays below the quantum;
//  (b) thread1's slack (deadline - completion) is always positive: no misses.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/mpeg/player.h"
#include "src/mpeg/trace.h"
#include "src/rt/rma.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hscommon::ToMillis;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  const std::string trace_base = hbench::TraceBase(argc, argv);
  const auto tracer = hbench::MaybeTracer(trace_base);
  std::printf("Figure 9: scheduling latency and slack of a rate-monotonic thread\n");
  std::printf("thread1: 10 ms / 60 ms;  thread2: 150 ms / 960 ms;  quantum 25 ms;\n");
  std::printf("MPEG decoder competing from SFQ-1 (equal node weights).\n");

  hsim::System sys(hsim::System::Config{.default_quantum = 25 * kMillisecond});
  sys.SetTracer(tracer.get());
  const auto injector = hbench::MaybeFault(hbench::FaultArg(argc, argv), sys);
  const auto rt = *sys.tree().MakeNode(
      "svr4-rt", hsfq::kRootNode, 1,
      std::make_unique<hleaf::RmaScheduler>(
          hleaf::RmaScheduler::Config{.admission_control = false}));
  const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::SfqLeafScheduler>());

  auto wl1 = std::make_unique<hsim::PeriodicWorkload>(60 * kMillisecond, 10 * kMillisecond);
  hsim::PeriodicWorkload* thread1 = wl1.get();
  const auto t1 = *sys.CreateThread(
      "thread1", rt, {.period = 60 * kMillisecond, .computation = 10 * kMillisecond},
      std::move(wl1));
  auto wl2 =
      std::make_unique<hsim::PeriodicWorkload>(960 * kMillisecond, 150 * kMillisecond);
  hsim::PeriodicWorkload* thread2 = wl2.get();
  (void)*sys.CreateThread(
      "thread2", rt, {.period = 960 * kMillisecond, .computation = 150 * kMillisecond},
      std::move(wl2));

  hmpeg::VbrTraceConfig tc;
  tc.frame_count = 3000;
  const hmpeg::VbrTrace trace = hmpeg::VbrTrace::Generate(tc);
  (void)*sys.CreateThread("mpeg", sfq1, {},
                          std::make_unique<hmpeg::MpegPlayerWorkload>(
                              &trace, hmpeg::MpegPlayerWorkload::Config{}));

  sys.RunUntil(60 * kSecond);

  const auto& stats = sys.StatsOf(t1);
  TextTable series({"round", "latency_ms", "slack_ms"});
  const auto& lat = stats.latency_samples;
  const auto& slack = thread1->slack_samples();
  const size_t rounds = std::min(lat.size(), slack.size());
  for (size_t i = 0; i < rounds; ++i) {
    series.AddRow({TextTable::Int(static_cast<int64_t>(i)),
                   TextTable::Num(lat[i] / 1e6, 3), TextTable::Num(slack[i] / 1e6, 3)});
  }
  if (!csv_dir.empty()) {
    series.WriteCsv(csv_dir + "/fig09_series.csv");
    std::printf("(per-round series: %s/fig09_series.csv)\n", csv_dir.c_str());
  }

  TextTable summary({"metric", "min", "mean", "max"});
  summary.AddRow({"thread1 latency (ms)", TextTable::Num(stats.sched_latency.min() / 1e6, 3),
                  TextTable::Num(stats.sched_latency.mean() / 1e6, 3),
                  TextTable::Num(stats.sched_latency.max() / 1e6, 3)});
  summary.AddRow({"thread1 slack (ms)", TextTable::Num(thread1->slack().min() / 1e6, 3),
                  TextTable::Num(thread1->slack().mean() / 1e6, 3),
                  TextTable::Num(thread1->slack().max() / 1e6, 3)});
  summary.AddRow({"thread2 slack (ms)", TextTable::Num(thread2->slack().min() / 1e6, 3),
                  TextTable::Num(thread2->slack().mean() / 1e6, 3),
                  TextTable::Num(thread2->slack().max() / 1e6, 3)});
  hbench::Emit(summary, "latency and slack summary", csv_dir, "fig09_summary");

  std::printf("\nthread1 rounds: %llu, deadline misses: %llu;  thread2 rounds: %llu, "
              "misses: %llu\n",
              static_cast<unsigned long long>(thread1->rounds_completed()),
              static_cast<unsigned long long>(thread1->deadline_misses()),
              static_cast<unsigned long long>(thread2->rounds_completed()),
              static_cast<unsigned long long>(thread2->deadline_misses()));
  const bool lat_ok = stats.sched_latency.max() <= static_cast<double>(25 * kMillisecond);
  const bool slack_ok = thread1->deadline_misses() == 0 && thread1->slack().min() > 0;
  std::printf("\nPaper's shape: (a) latency bounded by the 25 ms quantum; (b) slack always"
              " positive (no deadline violated).\n");
  std::printf("Reproduced:    (a) %s (max %.2f ms); (b) %s (min slack %.2f ms)\n",
              lat_ok ? "yes" : "NO", stats.sched_latency.max() / 1e6,
              slack_ok ? "yes" : "NO", thread1->slack().min() / 1e6);
  hbench::ReportFaults(injector.get());
  hbench::ExportTrace(tracer.get(), trace_base);
  return 0;
}
