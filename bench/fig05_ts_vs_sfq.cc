// Figure 5: throughput of 5 Dhrystone threads under the SVR4 time-sharing scheduler vs
// SFQ. The paper's claim: with identical user priorities TS delivers visibly different
// per-thread throughput; with identical SFQ weights all five match.
//
// Workload: five always-runnable "Dhrystone" threads plus normal-system background
// (interactive threads and interrupts — the paper ran in multiuser mode), 30 s.
// "Loops completed" = attained service / cycles-per-loop (1 loop = 10 us here).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/metrics/metrics.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/system.h"

using hscommon::kMicrosecond;
using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hsfq::ThreadId;

namespace {

constexpr int kThreads = 5;
constexpr hscommon::Work kCyclesPerLoop = 10 * kMicrosecond;
constexpr hscommon::Time kDuration = 30 * kSecond;

struct RunResult {
  std::vector<double> loops;            // final loop counts per thread
  std::vector<std::vector<double>> series;  // per-second loop counts per thread
  double max_rel_dev;
  double jain;
};

RunResult RunOnce(bool use_sfq, uint64_t seed, htrace::Tracer* tracer = nullptr,
                  const std::string& fault_spec = "") {
  hsim::System sys;
  sys.SetTracer(tracer);
  const auto injector = hbench::MaybeFault(fault_spec, sys);
  hsfq::NodeId leaf;
  if (use_sfq) {
    leaf = *sys.tree().MakeNode("class", hsfq::kRootNode, 1,
                                std::make_unique<hleaf::SfqLeafScheduler>());
  } else {
    leaf = *sys.tree().MakeNode("class", hsfq::kRootNode, 1,
                                std::make_unique<hleaf::TsScheduler>());
  }
  // "Multiuser mode with all the normal system processes": interrupts + daemons.
  sys.AddInterruptSource({.arrival = hsim::InterruptSourceConfig::Arrival::kPoisson,
                          .interval = 5 * kMillisecond,
                          .service = 200 * kMicrosecond,
                          .exponential_service = true,
                          .seed = seed});
  std::vector<ThreadId> dhry;
  for (int i = 0; i < kThreads; ++i) {
    dhry.push_back(*sys.CreateThread("dhry" + std::to_string(i), leaf,
                                     {.weight = 1, .priority = 29},
                                     std::make_unique<hsim::CpuBoundWorkload>()));
  }
  for (int i = 0; i < 4; ++i) {
    (void)*sys.CreateThread(
        "daemon" + std::to_string(i), leaf, {.weight = 1, .priority = 29},
        std::make_unique<hsim::InteractiveWorkload>(seed * 10 + i, 40 * kMillisecond,
                                                    8 * kMillisecond));
  }
  hmetrics::ServiceSampler sampler(sys, kSecond, kSecond);
  for (int i = 0; i < kThreads; ++i) {
    sampler.Track("dhry" + std::to_string(i), {dhry[i]});
  }
  sys.RunUntil(kDuration + kMillisecond);

  RunResult result;
  for (ThreadId t : dhry) {
    result.loops.push_back(static_cast<double>(sys.StatsOf(t).total_service) /
                           static_cast<double>(kCyclesPerLoop));
  }
  for (int i = 0; i < kThreads; ++i) {
    std::vector<double> s;
    for (hscommon::Work w : sampler.PerInterval(i)) {
      s.push_back(static_cast<double>(w) / static_cast<double>(kCyclesPerLoop));
    }
    result.series.push_back(std::move(s));
  }
  result.max_rel_dev = hscommon::MaxRelativeDeviation(result.loops);
  result.jain = hscommon::JainFairnessIndex(result.loops);
  hbench::ReportFaults(injector.get());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  const std::string trace_base = hbench::TraceBase(argc, argv);
  const auto tracer = hbench::MaybeTracer(trace_base);
  std::printf("Figure 5: throughput of 5 Dhrystone threads — SVR4 TS vs SFQ (30 s)\n");

  const std::string fault_spec = hbench::FaultArg(argc, argv);  // faults the SFQ run
  const RunResult ts = RunOnce(/*use_sfq=*/false, /*seed=*/11);
  const RunResult sfq = RunOnce(/*use_sfq=*/true, /*seed=*/11, tracer.get(), fault_spec);
  hbench::ExportTrace(tracer.get(), trace_base);

  TextTable final_table({"thread", "TS_loops", "SFQ_loops"});
  for (int i = 0; i < kThreads; ++i) {
    final_table.AddRow({"dhry" + std::to_string(i),
                        TextTable::Num(ts.loops[i], 0),
                        TextTable::Num(sfq.loops[i], 0)});
  }
  hbench::Emit(final_table, "total loops completed per thread", csv_dir, "fig05_totals");

  TextTable series({"second", "sched", "t0", "t1", "t2", "t3", "t4"});
  for (size_t s = 0; s < ts.series[0].size(); ++s) {
    std::vector<std::string> row_ts{TextTable::Int(static_cast<int64_t>(s + 1)), "TS"};
    std::vector<std::string> row_sfq{TextTable::Int(static_cast<int64_t>(s + 1)), "SFQ"};
    for (int i = 0; i < kThreads; ++i) {
      row_ts.push_back(TextTable::Num(ts.series[i][s], 0));
      row_sfq.push_back(TextTable::Num(sfq.series[i][s], 0));
    }
    series.AddRow(row_ts);
    series.AddRow(row_sfq);
  }
  if (!csv_dir.empty()) {
    series.WriteCsv(csv_dir + "/fig05_series.csv");
  }

  std::printf("\nMax relative deviation across threads:  TS %.1f%%   SFQ %.3f%%\n",
              ts.max_rel_dev * 100.0, sfq.max_rel_dev * 100.0);
  std::printf("Jain fairness index:                    TS %.4f  SFQ %.6f\n", ts.jain,
              sfq.jain);
  std::printf("\nPaper's shape: TS throughput varies significantly across identical "
              "threads; SFQ threads are equal.\n");
  std::printf("Reproduced:    %s (TS deviation %.1fx the SFQ deviation)\n",
              ts.max_rel_dev > 5 * sfq.max_rel_dev ? "yes" : "NO",
              sfq.max_rel_dev > 0 ? ts.max_rel_dev / sfq.max_rel_dev : 0.0);
  return 0;
}
