// Figure 11: dynamic bandwidth allocation. Two Dhrystone threads in node SFQ-1; the
// scripted timeline of the paper:
//   t=0  weights 4:4     -> ratio 1
//   t=4  thread2 -> 2    -> ratio 2
//   t=6  thread1 asleep  -> ratio 0 (only thread2 runs)
//   t=9  thread1 resumes -> ratio 2
//   t=12 thread1 -> 8    -> ratio 4
//   t=16 thread2 -> 4    -> ratio 2
//   t=22 thread1 -> 4    -> ratio 1

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/metrics/metrics.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/system.h"

using hscommon::kMicrosecond;
using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  const std::string trace_base = hbench::TraceBase(argc, argv);
  const auto tracer = hbench::MaybeTracer(trace_base);
  std::printf("Figure 11: dynamic weight changes (SFQ leaf)\n");

  hsim::System sys;
  sys.SetTracer(tracer.get());
  const auto injector = hbench::MaybeFault(hbench::FaultArg(argc, argv), sys);
  const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const auto t1 = *sys.CreateThread("thread1", sfq1, {.weight = 4},
                                    std::make_unique<hsim::CpuBoundWorkload>());
  const auto t2 = *sys.CreateThread("thread2", sfq1, {.weight = 4},
                                    std::make_unique<hsim::CpuBoundWorkload>());

  sys.At(4 * kSecond, [&](hsim::System& s) {
    (void)s.tree().SetThreadParams(t2, {.weight = 2});
  });
  sys.At(6 * kSecond, [&](hsim::System& s) { (void)s.Suspend(t1); });
  sys.At(9 * kSecond, [&](hsim::System& s) { s.Resume(t1); });
  sys.At(12 * kSecond, [&](hsim::System& s) {
    (void)s.tree().SetThreadParams(t1, {.weight = 8});
  });
  sys.At(16 * kSecond, [&](hsim::System& s) {
    (void)s.tree().SetThreadParams(t2, {.weight = 4});
  });
  sys.At(22 * kSecond, [&](hsim::System& s) {
    (void)s.tree().SetThreadParams(t1, {.weight = 4});
  });

  hmetrics::ServiceSampler sampler(sys, kSecond / 2, kSecond / 2);
  sampler.Track("thread1", {t1});
  sampler.Track("thread2", {t2});
  sys.RunUntil(26 * kSecond + kMillisecond);

  constexpr hscommon::Work kCyclesPerLoop = 10 * kMicrosecond;
  TextTable table({"time_s", "thread1_loops", "thread2_loops", "ratio"});
  const auto d1 = sampler.PerInterval(0);
  const auto d2 = sampler.PerInterval(1);
  for (size_t s = 0; s < d1.size(); ++s) {
    const double l1 = static_cast<double>(d1[s]) / static_cast<double>(kCyclesPerLoop);
    const double l2 = static_cast<double>(d2[s]) / static_cast<double>(kCyclesPerLoop);
    table.AddRow({TextTable::Num(0.5 * static_cast<double>(s + 1) + 0.5, 1),
                  TextTable::Num(l1, 0), TextTable::Num(l2, 0),
                  TextTable::Num(l2 > 0 ? l1 / l2 : -1.0, 3)});
  }
  hbench::Emit(table, "per-half-second throughput and ratio", csv_dir, "fig11");

  // Verify the ratio in each scripted phase.
  auto phase_ratio = [&](double from_s, double to_s) {
    double s1 = 0;
    double s2 = 0;
    for (size_t s = 0; s < d1.size(); ++s) {
      // PerInterval index s covers [(s+1)*0.5, (s+2)*0.5) seconds.
      const double t = 0.5 * static_cast<double>(s + 1);
      if (t >= from_s && t + 0.5 <= to_s) {
        s1 += static_cast<double>(d1[s]);
        s2 += static_cast<double>(d2[s]);
      }
    }
    return s2 > 0 ? s1 / s2 : -1.0;
  };
  struct Phase {
    double from;
    double to;
    double expect;
  };
  const Phase phases[] = {{1, 4, 1.0},  {4.5, 6, 2.0}, {6.5, 9, 0.0},
                          {9.5, 12, 2.0}, {12.5, 16, 4.0}, {16.5, 22, 2.0},
                          {22.5, 26, 1.0}};
  bool all_ok = true;
  std::printf("\nphase            expected  measured\n");
  for (const Phase& p : phases) {
    const double r = phase_ratio(p.from, p.to);
    const bool ok = std::abs(r - p.expect) <= std::max(0.02, 0.06 * p.expect);
    all_ok = all_ok && ok;
    std::printf("[%4.1fs,%4.1fs)      %5.2f     %6.3f %s\n", p.from, p.to, p.expect, r,
                ok ? "" : "  <-- off");
  }
  std::printf("\nPaper's shape: throughput ratio tracks 4:4 -> 4:2 -> 0:2 -> 4:2 -> 8:2 "
              "-> 8:4 -> 4:4 as weights change.\nReproduced:    %s\n",
              all_ok ? "yes" : "NO");
  hbench::ReportFaults(injector.get());
  hbench::ExportTrace(tracer.get(), trace_base);
  return 0;
}
