// Ablation: SFQ's delay guarantee (paper eq. 8) — measured vs analytic — and the §6
// comparison of SFQ / WFQ / SCFQ delay bounds for a low-throughput flow.
//
// Setup: one low-throughput periodic flow (the "interactive application", weight 1)
// competes with heavy CPU-bound flows. All quanta are full-length so the classic bounds'
// l = lmax assumption holds for every algorithm. For each of the flow's quanta we compute
// its Expected Arrival Time (EAT) and check completion <= EAT + bound.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/fair/bounds.h"
#include "src/fair/make.h"
#include "src/qos/server_model.h"

using hfair::Algorithm;
using hfair::FlowId;
using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hscommon::Time;
using hscommon::Work;

namespace {

constexpr Work kQ = 10 * kMillisecond;       // everyone's quantum (bounds assume l = lmax)
constexpr Time kPeriod = 100 * kMillisecond; // the low-throughput flow's inter-burst gap
constexpr int kCompetitors = 4;

// Drives a flat scheduler with one periodic low-throughput flow (weight 1) against
// kCompetitors CPU-bound flows (weight 5 each); measures the worst observed delay
// (completion - EAT) of the periodic flow. Wall time advances 1:1 with service (the FC
// delta term is exercised analytically; the measured system is the delta=0 case).
double MeasureWorstDelayMs(Algorithm alg) {
  auto fq = hfair::MakeFairQueue(alg, kQ, 3);
  const FlowId lo = fq->AddFlow(1);
  std::vector<FlowId> hogs;
  for (int i = 0; i < kCompetitors; ++i) {
    hogs.push_back(fq->AddFlow(5));
  }
  Time now = 0;
  for (FlowId h : hogs) {
    fq->Arrive(h, now);
  }
  // Weight 1 of 21 total on a unit-rate CPU -> guaranteed rate 1/21.
  hfair::EatTracker eat(1, 21);
  double worst_delay = 0.0;
  Time next_release = 0;
  bool lo_active = false;
  Time lo_eat = 0;
  for (int round = 0; round < 20000; ++round) {
    if (!lo_active && now >= next_release) {
      fq->Arrive(lo, now);
      lo_active = true;
      lo_eat = eat.OnRequest(now, kQ);
    }
    const FlowId f = fq->PickNext(now);
    const Work used = kQ;
    now += used;
    const bool keep = f != lo;
    fq->Complete(f, used, now, keep);
    if (f == lo) {
      lo_active = false;
      next_release = now + kPeriod;
      worst_delay = std::max(worst_delay, static_cast<double>(now - lo_eat));
    }
  }
  return worst_delay / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Ablation: delay bounds — measured vs analytic (paper eq. 8 and §6)\n");
  std::printf("Low-throughput flow: one %lld ms burst every %lld ms, weight 1, vs %d "
              "CPU-bound flows of weight 5 (%lld ms quanta everywhere)\n",
              static_cast<long long>(kQ / kMillisecond),
              static_cast<long long>(kPeriod / kMillisecond), kCompetitors,
              static_cast<long long>(kQ / kMillisecond));

  // Analytic bounds (delta = 0, unit rate).
  std::vector<hfair::FlowParams> flows;
  flows.push_back({.weight = 1, .lmax = kQ});
  for (int i = 0; i < kCompetitors; ++i) {
    flows.push_back({.weight = 5, .lmax = kQ});
  }
  const Time sfq_bound = hfair::SfqDelayBound(flows, 0, kQ, 0);
  const Time wfq_bound = hfair::WfqDelayBound(flows, 0, kQ, 0);
  const Time scfq_bound = hfair::ScfqDelayBound(flows, 0, kQ, 0);

  TextTable table({"algorithm", "analytic_bound_ms", "measured_worst_ms", "holds"});
  struct Entry {
    Algorithm alg;
    Time bound;
  };
  const Entry entries[] = {{Algorithm::kSfq, sfq_bound},
                           {Algorithm::kWfq, wfq_bound},
                           {Algorithm::kScfq, scfq_bound}};
  bool sfq_ok = false;
  for (const Entry& e : entries) {
    const double measured = MeasureWorstDelayMs(e.alg);
    const bool holds = measured <= static_cast<double>(e.bound) / 1e6 + 1e-9;
    if (e.alg == Algorithm::kSfq) {
      sfq_ok = holds;
    }
    table.AddRow({hfair::AlgorithmName(e.alg),
                  TextTable::Num(static_cast<double>(e.bound) / 1e6, 2),
                  TextTable::Num(measured, 2), holds ? "yes" : "NO"});
  }
  hbench::Emit(table, "worst-case delay of the low-throughput flow", csv_dir,
               "abl_delay_measured");

  // The §6 bound comparison as the competitor count grows.
  TextTable scale({"competitors", "SFQ_bound_ms", "WFQ_bound_ms", "SCFQ_bound_ms"});
  for (int n = 1; n <= 16; n *= 2) {
    std::vector<hfair::FlowParams> fs;
    fs.push_back({.weight = 1, .lmax = kQ});
    for (int i = 0; i < n; ++i) {
      fs.push_back({.weight = 5, .lmax = kQ});
    }
    scale.AddRow(
        {TextTable::Int(n),
         TextTable::Num(static_cast<double>(hfair::SfqDelayBound(fs, 0, kQ, 0)) / 1e6, 1),
         TextTable::Num(static_cast<double>(hfair::WfqDelayBound(fs, 0, kQ, 0)) / 1e6, 1),
         TextTable::Num(static_cast<double>(hfair::ScfqDelayBound(fs, 0, kQ, 0)) / 1e6,
                        1)});
  }
  hbench::Emit(scale, "analytic bounds vs competitor count", csv_dir, "abl_delay_bounds");

  // FC-server variant: how the delta term extends the bound (paper's FC composition).
  const hqos::FcServer cpu = hqos::FcFromPeriodicInterrupts(10 * kMillisecond, kMillisecond);
  std::printf("\nWith periodic interrupts (1 ms every 10 ms) the CPU is FC(rate=%.2f, "
              "delta=%.1f ms); the SFQ bound grows by delta/C = %.1f ms.\n",
              cpu.rate, cpu.delta / 1e6, cpu.delta / cpu.rate / 1e6);

  std::printf("\nPaper's shape: SFQ's measured delay respects eq. 8; for low-throughput "
              "flows SFQ's bound (one round of everyone) undercuts WFQ's (service at the "
              "flow's tiny reserved rate) and SCFQ's (which adds (Q-1)*lmax).\n");
  std::printf("Reproduced:    SFQ bound holds: %s; SFQ %.1f ms < WFQ %.1f ms: %s; "
              "SFQ %.1f ms < SCFQ %.1f ms: %s\n",
              sfq_ok ? "yes" : "NO", static_cast<double>(sfq_bound) / 1e6,
              static_cast<double>(wfq_bound) / 1e6, sfq_bound < wfq_bound ? "yes" : "NO",
              static_cast<double>(sfq_bound) / 1e6, static_cast<double>(scfq_bound) / 1e6,
              sfq_bound < scfq_bound ? "yes" : "NO");
  return 0;
}
