// Figure 3: "Computation of virtual time, start tag, and finish tag in SFQ: an example."
// Replays the paper's worked example — threads A (weight 1) and B (weight 2), 10 ms
// quanta, B blocks at t=60, A blocks at t=90, A returns at 110, B returns at 115 — and
// prints every scheduling decision with its tags. The unit test
// SfqTest.PaperFigure3GoldenExample asserts these values; this binary renders the figure.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fair/sfq.h"

using hfair::FlowId;
using hfair::Sfq;
using hscommon::TextTable;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Figure 3: SFQ virtual time / start tag / finish tag example\n");
  std::printf("Threads: A (weight 1), B (weight 2); quantum 10 ms.\n");

  Sfq sfq;
  const FlowId a = sfq.AddFlow(1);
  const FlowId b = sfq.AddFlow(2);

  TextTable table({"t_ms", "event", "runs", "v(t)", "S_A", "F_A", "S_B", "F_B"});
  auto row = [&](long t, const std::string& event, const std::string& runs) {
    table.AddRow({TextTable::Int(t), event, runs, sfq.VirtualTimeNow().ToString(),
                  sfq.StartTag(a).ToString(), sfq.FinishTag(a).ToString(),
                  sfq.StartTag(b).ToString(), sfq.FinishTag(b).ToString()});
  };

  long t = 0;
  sfq.Arrive(a, t);
  sfq.Arrive(b, t);
  row(t, "A, B become runnable", "-");

  // The paper's timeline: B blocks when its quantum starting at t=50 ends; A blocks when
  // its quantum starting at t=80 ends. Quanta 0..8 cover t in [0,90).
  for (int q = 0; q < 9; ++q) {
    const FlowId f = sfq.PickNext(t);
    const bool blocks = (f == b && t == 50) || (f == a && t == 80);
    sfq.Complete(f, 10, t + 10, /*still_backlogged=*/!blocks);
    t += 10;
    row(t, blocks ? "quantum ends; thread blocks" : "quantum ends",
        f == a ? "A" : "B");
  }

  // Idle in [90, 110): v(t) = max finish tag.
  row(100, "system idle", "-");

  sfq.Arrive(a, 110);
  t = 110;
  row(t, "A returns", "-");
  const FlowId f110 = sfq.PickNext(t);
  sfq.Arrive(b, 115);
  row(115, "B returns (A in service)", f110 == a ? "A" : "B");
  sfq.Complete(f110, 10, 120, true);
  t = 120;
  row(t, "quantum ends", f110 == a ? "A" : "B");
  for (int q = 0; q < 6; ++q) {
    const FlowId f = sfq.PickNext(t);
    sfq.Complete(f, 10, t + 10, true);
    t += 10;
    row(t, "quantum ends", f == a ? "A" : "B");
  }

  hbench::Emit(table, "execution sequence and tags", csv_dir, "fig03_tags");
  std::printf("\nPaper's shape: before t=60 A:B service is 20:40 (1:2); after both "
              "return, S_A = S_B = 50 and the 1:2 ratio resumes.\n");
  return 0;
}
