// Figure 7: scheduling overhead of the hierarchical scheduler.
//  (a) Ratio of aggregate throughput (hierarchical vs "unmodified" flat kernel) as the
//      number of Dhrystone threads grows from 1 to 20 — paper: within 1%.
//  (b) Throughput as the depth of the node chain above the busy leaf grows from 0 to 30 —
//      paper: within 0.2%.
//
// Method (DESIGN.md §2): measure the real wall-clock cost of one Schedule()+Update()
// cycle for each configuration with a timing microloop, then charge that measured cost as
// dispatch overhead inside the simulation and compare delivered throughput. 20 ms
// quantum, averaged over 20 runs, as in the paper.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/simple.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hscommon::Time;

namespace {

constexpr Time kDuration = 10 * kSecond;
constexpr int kRuns = 20;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Builds a chain of `depth` interior nodes ending in an SFQ leaf with `threads` attached
// runnable threads, and measures the real cost of one Schedule+Update cycle.
int64_t MeasureDispatchCost(int depth, int threads) {
  hsfq::SchedulingStructure tree;
  hsfq::NodeId parent = hsfq::kRootNode;
  for (int d = 0; d < depth; ++d) {
    parent = *tree.MakeNode("d" + std::to_string(d), parent, 1, nullptr);
  }
  const hsfq::NodeId leaf =
      *tree.MakeNode("leaf", parent, 1, std::make_unique<hleaf::SfqLeafScheduler>());
  for (int i = 0; i < threads; ++i) {
    (void)tree.AttachThread(i + 1, leaf, {});
    tree.SetRun(i + 1, 0);
  }
  constexpr int kIters = 20000;
  const int64_t t0 = NowNs();
  for (int i = 0; i < kIters; ++i) {
    const hsfq::ThreadId t = tree.Schedule(0);
    tree.Update(t, 20 * kMillisecond, 0, true);
  }
  return (NowNs() - t0) / kIters;
}

// Flat "unmodified kernel" baseline: one round-robin run queue at the root.
int64_t MeasureFlatCost(int threads) {
  hsfq::SchedulingStructure tree;
  const hsfq::NodeId leaf = *tree.MakeNode("runq", hsfq::kRootNode, 1,
                                           std::make_unique<hleaf::RoundRobinScheduler>());
  for (int i = 0; i < threads; ++i) {
    (void)tree.AttachThread(i + 1, leaf, {});
    tree.SetRun(i + 1, 0);
  }
  constexpr int kIters = 20000;
  const int64_t t0 = NowNs();
  for (int i = 0; i < kIters; ++i) {
    const hsfq::ThreadId t = tree.Schedule(0);
    tree.Update(t, 20 * kMillisecond, 0, true);
  }
  return (NowNs() - t0) / kIters;
}

// Simulated aggregate service with the given per-dispatch overhead charged.
double ThroughputWithOverhead(bool hierarchical, int depth, int threads, Time overhead,
                              uint64_t seed) {
  hsim::System sys(hsim::System::Config{.default_quantum = 20 * kMillisecond,
                                        .dispatch_overhead = overhead});
  hsfq::NodeId parent = hsfq::kRootNode;
  if (hierarchical) {
    for (int d = 0; d < depth; ++d) {
      parent = *sys.tree().MakeNode("d" + std::to_string(d), parent, 1, nullptr);
    }
  }
  hsfq::NodeId leaf;
  if (hierarchical) {
    leaf = *sys.tree().MakeNode("sfq1", parent, 1,
                                std::make_unique<hleaf::SfqLeafScheduler>());
  } else {
    leaf = *sys.tree().MakeNode("runq", hsfq::kRootNode, 1,
                                std::make_unique<hleaf::RoundRobinScheduler>());
  }
  for (int i = 0; i < threads; ++i) {
    (void)*sys.CreateThread("dhry" + std::to_string(i), leaf, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  // Light background interrupts; `seed` varies them across the 20 runs.
  sys.AddInterruptSource({.arrival = hsim::InterruptSourceConfig::Arrival::kPoisson,
                          .interval = 10 * kMillisecond,
                          .service = 100 * hscommon::kMicrosecond,
                          .exponential_service = true,
                          .seed = seed});
  sys.RunUntil(kDuration);
  return static_cast<double>(sys.total_service());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Figure 7: scheduling overhead of the hierarchical scheduler\n");
  std::printf("(dispatch costs measured live on this machine, then charged in-sim; "
              "%d runs averaged)\n", kRuns);

  // --- (a) ratio vs number of threads ---
  TextTable ta({"threads", "hsfq_cost_ns", "flat_cost_ns", "throughput_ratio"});
  bool a_ok = true;
  for (int threads = 1; threads <= 20; ++threads) {
    const int64_t hsfq_cost = MeasureDispatchCost(/*depth=*/1, threads);
    const int64_t flat_cost = MeasureFlatCost(threads);
    hscommon::RunningStats ratio;
    for (int run = 0; run < kRuns; ++run) {
      const double h = ThroughputWithOverhead(true, 1, threads, hsfq_cost, 100 + run);
      const double f = ThroughputWithOverhead(false, 0, threads, flat_cost, 100 + run);
      ratio.Add(h / f);
    }
    a_ok = a_ok && ratio.mean() > 0.99;
    ta.AddRow({TextTable::Int(threads), TextTable::Int(hsfq_cost),
               TextTable::Int(flat_cost), TextTable::Num(ratio.mean(), 5)});
  }
  hbench::Emit(ta, "(a) hierarchical/unmodified throughput ratio vs #threads", csv_dir,
               "fig07a_threads");

  // --- (b) throughput vs depth ---
  TextTable tb({"depth", "hsfq_cost_ns", "throughput_vs_depth0"});
  double depth0 = 0.0;
  bool b_ok = true;
  for (int depth = 0; depth <= 30; depth += 3) {
    const int64_t cost = MeasureDispatchCost(depth, /*threads=*/5);
    hscommon::RunningStats tput;
    for (int run = 0; run < kRuns; ++run) {
      tput.Add(ThroughputWithOverhead(true, depth, 5, cost, 200 + run));
    }
    if (depth == 0) {
      depth0 = tput.mean();
    }
    const double rel = tput.mean() / depth0;
    b_ok = b_ok && rel > 0.995;
    tb.AddRow({TextTable::Int(depth), TextTable::Int(cost), TextTable::Num(rel, 5)});
  }
  hbench::Emit(tb, "(b) throughput vs hierarchy depth (relative to depth 0)", csv_dir,
               "fig07b_depth");

  std::printf("\nPaper's shape: (a) within 1%% of the unmodified kernel for 1-20 threads;"
              " (b) within 0.2%% across depth 0-30.\n");
  std::printf("Reproduced:    (a) %s; (b) %s.\n", a_ok ? "yes" : "NO", b_ok ? "yes" : "NO");
  return 0;
}
