// Microbenchmarks of the trace -> workload synthesis pipeline: what one differential
// comparison costs. Split along the pipeline's stages — parsing a recorded stream into
// a TraceAnalyzer, fitting per-thread workload models (Synthesize), instantiating the
// scenario into a fresh System, and the per-action cost of histogram resampling — so a
// regression in any one stage is attributable.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/registry.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"
#include "src/sim/workload.h"
#include "src/synth/synth_workload.h"
#include "src/synth/synthesize.h"
#include "src/trace/reader.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;

namespace {

// A mixed 8-thread, two-leaf source run; `seconds` controls the event volume.
std::vector<htrace::TraceEvent> RecordSource(int seconds) {
  htrace::Tracer tracer;
  hsim::System sys;
  sys.SetTracer(&tracer);
  const auto rt = *sys.tree().MakeNode("rt", hsfq::kRootNode, 3,
                                       std::make_unique<hleaf::SfqLeafScheduler>());
  const auto be = *sys.tree().MakeNode("be", hsfq::kRootNode, 1,
                                       std::make_unique<hleaf::SfqLeafScheduler>());
  (void)*sys.CreateThread(
      "video", rt, {},
      std::make_unique<hsim::PeriodicWorkload>(33 * kMillisecond, 8 * kMillisecond));
  for (int i = 0; i < 5; ++i) {
    (void)*sys.CreateThread(
        "burst" + std::to_string(i), be, {},
        std::make_unique<hsim::BurstyWorkload>(7 + i, 2 * kMillisecond,
                                               30 * kMillisecond, 10 * kMillisecond,
                                               150 * kMillisecond));
  }
  for (int i = 0; i < 2; ++i) {
    (void)*sys.CreateThread("hog" + std::to_string(i), i == 0 ? rt : be, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  sys.RunUntil(static_cast<hscommon::Time>(seconds) * kSecond);
  return tracer.MergedSnapshot();
}

// Stream -> TraceAnalyzer: the parse/accounting pass every consumer pays once.
void BM_TraceAnalyze(benchmark::State& state) {
  const auto events = RecordSource(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const htrace::TraceAnalyzer analyzer(events);
    benchmark::DoNotOptimize(analyzer.last_time());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.SetLabel(std::to_string(events.size()) + " events");
}
BENCHMARK(BM_TraceAnalyze)->Arg(5)->Arg(30);

// TraceAnalyzer -> SynthScenario: episode extraction plus per-thread model fitting.
void BM_SynthesizeFit(benchmark::State& state) {
  const auto events = RecordSource(static_cast<int>(state.range(0)));
  const htrace::TraceAnalyzer analyzer(events);
  for (auto _ : state) {
    auto scenario = hsynth::Synthesize(analyzer, {});
    benchmark::DoNotOptimize(scenario);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.SetLabel(std::to_string(events.size()) + " events");
}
BENCHMARK(BM_SynthesizeFit)->Arg(5)->Arg(30);

// SynthScenario -> live System: tree rebuild + thread creation, the per-side setup
// cost of a sched_diff run (excludes the simulation itself).
void BM_ScenarioInstantiation(benchmark::State& state) {
  const auto events = RecordSource(5);
  const htrace::TraceAnalyzer analyzer(events);
  auto scenario = hsynth::Synthesize(analyzer, {});
  const hsim::ScenarioSpec spec = hsynth::ToScenarioSpec(*scenario, {});
  for (auto _ : state) {
    hsim::System sys;
    auto binding = hsim::BuildScenario(spec, "sfq", hleaf::MakeLeafScheduler, sys);
    benchmark::DoNotOptimize(binding);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScenarioInstantiation);

// Per-action cost of a synthesized workload in both modes: exact replay is an indexed
// walk, histogram mode pays one PRNG draw per burst and per sleep.
void BM_SynthWorkloadStep(benchmark::State& state) {
  const bool histogram = state.range(0) != 0;
  std::vector<hsynth::SynthRecord> records;
  for (int i = 0; i < 512; ++i) {
    records.push_back({(1 + i % 7) * kMillisecond, (5 + i % 11) * kMillisecond, 0});
  }
  const hsynth::SynthesizedWorkload::Spec spec{
      .records = std::move(records),
      .mode = histogram ? hsynth::FitMode::kHistogram : hsynth::FitMode::kExactReplay,
      .seed = 42,
      .truncated = true};
  auto w = std::make_unique<hsynth::SynthesizedWorkload>(spec);
  hscommon::Time now = 0;
  for (auto _ : state) {
    const hsim::WorkloadAction a = w->NextAction(now);
    if (a.kind == hsim::WorkloadAction::Kind::kCompute) {
      now += a.work;
    } else if (a.until < hscommon::kTimeInfinity) {
      now = a.until;
    } else {
      // Exact replay ran dry: re-arm (amortized over the 1024 recorded actions).
      w = std::make_unique<hsynth::SynthesizedWorkload>(spec);
    }
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(histogram ? "histogram" : "exact");
}
BENCHMARK(BM_SynthWorkloadStep)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
