// Microbenchmarks (google-benchmark): the O(log Q) cost claim of §3.1(4) and the raw
// decision costs that feed the Figure 7 overhead experiment.
//
//   * SFQ PickNext+Complete vs number of flows (expected ~log growth);
//   * full hierarchical Schedule+Update vs tree depth (expected linear in depth);
//   * fanout sweep at a fixed depth;
//   * SFQ vs WFQ vs SCFQ vs Stride vs Lottery vs EEVDF single-level decision cost.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "src/fair/make.h"
#include "src/hsfq/structure.h"
#include "src/sched/registry.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/multi_tenant.h"
#include "src/sim/scenario.h"
#include "src/sim/shard.h"
#include "src/sim/system.h"
#include "src/sim/workload.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;

namespace {

// Process peak RSS in MiB (ru_maxrss is KiB on Linux) — the machine-level companion
// to ArenaFootprintBytes in the memory-vs-n curve.
double PeakRssMb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0.0;
  }
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

void BM_SfqDecision(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  auto fq = hfair::MakeFairQueue(hfair::Algorithm::kSfq, 10 * kMillisecond);
  std::vector<hfair::FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    ids.push_back(fq->AddFlow(1 + static_cast<hscommon::Weight>(i % 7)));
    fq->Arrive(ids.back(), 0);
  }
  for (auto _ : state) {
    const hfair::FlowId f = fq->PickNext(0);
    benchmark::DoNotOptimize(f);
    fq->Complete(f, 10 * kMillisecond, 0, true);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SfqDecision)->RangeMultiplier(4)->Range(2, 4096);

void BM_AlgorithmDecision(benchmark::State& state) {
  const auto alg = static_cast<hfair::Algorithm>(state.range(0));
  state.SetLabel(hfair::AlgorithmName(alg));
  auto fq = hfair::MakeFairQueue(alg, 10 * kMillisecond, /*seed=*/42);
  std::vector<hfair::FlowId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(fq->AddFlow(1 + static_cast<hscommon::Weight>(i % 5)));
    fq->Arrive(ids.back(), 0);
  }
  hscommon::Time now = 0;
  for (auto _ : state) {
    const hfair::FlowId f = fq->PickNext(now);
    benchmark::DoNotOptimize(f);
    now += 10 * kMillisecond;
    fq->Complete(f, 10 * kMillisecond, now, true);
  }
}
BENCHMARK(BM_AlgorithmDecision)
    ->DenseRange(0, static_cast<int>(hfair::Algorithm::kEevdf), 1);

// PickNext+Complete for each ready-heap algorithm at small / medium / large backlogs —
// the perf-regression guard for the indexed d-ary heap migration. range(0) is the
// algorithm, range(1) the number of backlogged flows.
void BM_PickNext(benchmark::State& state) {
  const auto alg = static_cast<hfair::Algorithm>(state.range(0));
  const auto flows = static_cast<int>(state.range(1));
  state.SetLabel(hfair::AlgorithmName(alg));
  auto fq = hfair::MakeFairQueue(alg, 10 * kMillisecond, /*seed=*/42);
  for (int i = 0; i < flows; ++i) {
    fq->Arrive(fq->AddFlow(1 + static_cast<hscommon::Weight>(i % 7)), 0);
  }
  hscommon::Time now = 0;
  for (auto _ : state) {
    const hfair::FlowId f = fq->PickNext(now);
    benchmark::DoNotOptimize(f);
    now += 10 * kMillisecond;
    fq->Complete(f, 10 * kMillisecond, now, true);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PickNext)
    ->ArgsProduct({{static_cast<int>(hfair::Algorithm::kSfq),
                    static_cast<int>(hfair::Algorithm::kScfq),
                    static_cast<int>(hfair::Algorithm::kWfq),
                    static_cast<int>(hfair::Algorithm::kStride),
                    static_cast<int>(hfair::Algorithm::kEevdf)},
                   {2, 64, 4096}});

// Arrive/Depart churn at a standing backlog: blocked<->runnable transitions exercise
// heap Erase (arbitrary position) and Push rather than the PopMin fast path.
void BM_ArriveDepartChurn(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  auto fq = hfair::MakeFairQueue(hfair::Algorithm::kSfq, 10 * kMillisecond);
  std::vector<hfair::FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    ids.push_back(fq->AddFlow(1 + static_cast<hscommon::Weight>(i % 7)));
    fq->Arrive(ids.back(), 0);
  }
  size_t cursor = 0;
  for (auto _ : state) {
    const hfair::FlowId f = ids[cursor];
    cursor = (cursor + 1) % ids.size();
    fq->Depart(f, 0);
    fq->Arrive(f, 0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ArriveDepartChurn)->Arg(2)->Arg(64)->Arg(4096);

// Builds a chain of `depth` interior nodes over a leaf with `threads` runnable threads.
std::unique_ptr<hsfq::SchedulingStructure> BuildTree(int depth, int threads) {
  auto tree = std::make_unique<hsfq::SchedulingStructure>();
  hsfq::NodeId parent = hsfq::kRootNode;
  for (int d = 0; d < depth; ++d) {
    parent = *tree->MakeNode("d" + std::to_string(d), parent, 1, nullptr);
  }
  const hsfq::NodeId leaf =
      *tree->MakeNode("leaf", parent, 1, std::make_unique<hleaf::SfqLeafScheduler>());
  for (int i = 0; i < threads; ++i) {
    (void)tree->AttachThread(i + 1, leaf, {});
    tree->SetRun(i + 1, 0);
  }
  return tree;
}

void BM_HierarchicalDispatchDepth(benchmark::State& state) {
  auto tree = BuildTree(static_cast<int>(state.range(0)), /*threads=*/8);
  for (auto _ : state) {
    const hsfq::ThreadId t = tree->Schedule(0);
    benchmark::DoNotOptimize(t);
    tree->Update(t, 20 * kMillisecond, 0, true);
  }
}
BENCHMARK(BM_HierarchicalDispatchDepth)->DenseRange(0, 30, 5);

void BM_HierarchicalDispatchFanout(benchmark::State& state) {
  // One interior node with `fanout` leaf children, one runnable thread each.
  const auto fanout = static_cast<int>(state.range(0));
  hsfq::SchedulingStructure tree;
  for (int i = 0; i < fanout; ++i) {
    const hsfq::NodeId leaf =
        *tree.MakeNode("leaf" + std::to_string(i), hsfq::kRootNode, 1,
                       std::make_unique<hleaf::SfqLeafScheduler>());
    (void)tree.AttachThread(i + 1, leaf, {});
    tree.SetRun(i + 1, 0);
  }
  for (auto _ : state) {
    const hsfq::ThreadId t = tree.Schedule(0);
    benchmark::DoNotOptimize(t);
    tree.Update(t, 20 * kMillisecond, 0, true);
  }
}
BENCHMARK(BM_HierarchicalDispatchFanout)->RangeMultiplier(2)->Range(2, 128);

// Dispatch cost of a depth-3 / 8-thread tree with tracing off vs on: the number quoted
// in docs/observability.md. arg 0 = untraced, 1 = tracer attached (recording into a
// preallocated 64k-event ring that wraps continuously — the steady-state worst case).
void BM_TraceOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  state.SetLabel(traced ? "traced" : "untraced");
  auto tree = BuildTree(/*depth=*/3, /*threads=*/8);
  htrace::Tracer tracer(1 << 16);
  if (traced) {
    tree->SetTracer(&tracer);
  }
  for (auto _ : state) {
    const hsfq::ThreadId t = tree->Schedule(0);
    benchmark::DoNotOptimize(t);
    tree->Update(t, 20 * kMillisecond, 0, true);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

void BM_SetRunSleepPropagation(benchmark::State& state) {
  // Wake/sleep of a single thread under a deep chain: the hsfq_setrun/hsfq_sleep path.
  auto tree = BuildTree(static_cast<int>(state.range(0)), /*threads=*/1);
  // Put the thread to sleep first (it was set runnable in BuildTree).
  tree->Sleep(1, 0);
  for (auto _ : state) {
    tree->SetRun(1, 0);
    tree->Sleep(1, 0);
  }
}
BENCHMARK(BM_SetRunSleepPropagation)->DenseRange(0, 30, 10);

// Full dispatch-loop throughput of the simulated machine: shared-tree dispatch vs
// per-CPU run-queue shards (src/sim/shard.h), swept over the CPU count and the
// interior width. The tree is range(2) groups x 64 leaves with one CPU-bound thread
// each, so every decision under the shared dispatcher walks two levels of fair-queue
// picks (the root pick scans wider as groups grow) while the sharded path pops a
// shard heap and commits through ScheduleLeaf, whose cost is width-independent.
// Items = scheduling decisions, so items/sec is the dispatch-loop throughput the
// scale curve plots. range(0) = CPUs, range(1) = sharded, range(2) = groups.
void BM_SmpDispatch(benchmark::State& state) {
  const int ncpus = static_cast<int>(state.range(0));
  const bool sharded = state.range(1) != 0;
  const int kGroups = static_cast<int>(state.range(2));
  state.SetLabel((sharded ? "sharded/" : "shared/") + std::to_string(ncpus) + "cpu/" +
                 std::to_string(kGroups) + "g");
  hsim::System sys({.ncpus = ncpus, .sharded = sharded});
  constexpr int kLeavesPerGroup = 64;
  for (int g = 0; g < kGroups; ++g) {
    const hsfq::NodeId group =
        *sys.tree().MakeNode("g" + std::to_string(g), hsfq::kRootNode,
                             1 + static_cast<hscommon::Weight>(g % 5), nullptr);
    for (int i = 0; i < kLeavesPerGroup; ++i) {
      const hsfq::NodeId leaf = *sys.tree().MakeNode(
          "l" + std::to_string(i), group, 1 + static_cast<hscommon::Weight>(i % 7),
          std::make_unique<hleaf::SfqLeafScheduler>());
      (void)*sys.CreateThread("t", leaf, {},
                              std::make_unique<hsim::CpuBoundWorkload>());
    }
  }
  const uint64_t before = sys.tree().schedule_count();
  hscommon::Time now = 0;
  for (auto _ : state) {
    now += 50 * kMillisecond;
    sys.RunUntil(now);
  }
  state.SetItemsProcessed(static_cast<int64_t>(sys.tree().schedule_count() - before));
}
BENCHMARK(BM_SmpDispatch)->ArgsProduct({{1, 2, 4, 8}, {0, 1}, {16, 64}});

// Per-decision cost of the sharded pick path as the leaf population grows from 10^3
// to 10^5: PickFor pops a lazy-deletion heap (log of shard size) and ScheduleLeaf
// charges O(depth), so the curve must grow sub-linearly in the leaf count. The
// shared-tree pick at the same populations anchors the comparison.
void BM_DecisionScaleLeaves(benchmark::State& state) {
  const int nleaves = static_cast<int>(state.range(0));
  const bool sharded = state.range(1) != 0;
  state.SetLabel((sharded ? "sharded/" : "shared/") + std::to_string(nleaves) +
                 "leaves");
  constexpr int kNcpus = 4;
  hsfq::SchedulingStructure tree;
  for (int i = 0; i < nleaves; ++i) {
    const hsfq::NodeId leaf =
        *tree.MakeNode("l" + std::to_string(i), hsfq::kRootNode,
                       1 + static_cast<hscommon::Weight>(i % 7),
                       std::make_unique<hleaf::SfqLeafScheduler>());
    (void)tree.AttachThread(i + 1, leaf, {});
    tree.SetRun(i + 1, 0);
  }
  hsim::ShardSet shards(&tree, kNcpus, 2 * kMillisecond);
  if (sharded) {
    shards.Resync();
  }
  hscommon::Time now = 0;
  int cpu = 0;
  for (auto _ : state) {
    hsfq::ThreadId t;
    if (sharded) {
      const hsim::ShardSet::Pick pick = shards.PickFor(cpu, /*steal_enabled=*/true);
      bool more = false;
      t = tree.ScheduleLeaf(pick.leaf, now, cpu, &more);
      shards.OnDispatched(pick.leaf, more);
      benchmark::DoNotOptimize(t);
      now += 10 * kMillisecond;
      tree.Update(t, 10 * kMillisecond, now, true, cpu);
      shards.OnCharged(pick.leaf, 10 * kMillisecond, tree.LeafDispatchable(pick.leaf));
    } else {
      t = tree.Schedule(now, cpu);
      benchmark::DoNotOptimize(t);
      now += 10 * kMillisecond;
      tree.Update(t, 10 * kMillisecond, now, true, cpu);
    }
    cpu = (cpu + 1) % kNcpus;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  // The memory half of the scale curve: structure-side bytes per leaf (machine
  // independent — container capacities, not allocator behavior) plus process peak RSS.
  state.counters["bytes_per_leaf"] = benchmark::Counter(
      static_cast<double>(tree.ArenaFootprintBytes()) / nleaves);
  state.counters["peak_rss_mb"] = benchmark::Counter(PeakRssMb());
}
BENCHMARK(BM_DecisionScaleLeaves)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}});

// The batched-wakeup economy at scale: a 10^5-leaf tree where one storm cohort of
// 4096 leaves (range(0) threads each) wakes and sleeps as a single synchronized
// tick, flushed through one deduped Reconcile per phase. Two claims are measured:
//
//   * dedup_x = dirty marks / change-log appends — with T threads per leaf, the T
//     SetRun calls that make a leaf dispatchable coalesce into ONE log entry, so the
//     ratio approaches T (per-leaf dedup, the per-tick pending-set collapse);
//   * sweep_save_x = leaves a per-round FULL sweep would have visited / leaves
//     actually touched — the storm stays inside the change-log cap, so reconciling
//     costs O(cohort) instead of O(total leaves) and never falls back to the global
//     Resync (full_resyncs stays at the startup sweep; asserted as a counter).
//
// Items = wakeup/sleep transitions absorbed, so items/sec is the kernel-hook
// throughput under storm load.
void BM_WakeupStorm(benchmark::State& state) {
  const int threads_per_leaf = static_cast<int>(state.range(0));
  constexpr int kLeaves = 100000;
  constexpr int kCohort = 4096;  // leaves flipped per storm (inside the log cap)
  constexpr int kNcpus = 4;
  state.SetLabel(std::to_string(threads_per_leaf) + "thr/leaf");
  // Production-shaped hierarchy (tenant -> user -> session), not a flat 10^5-way
  // root: EffectiveShare scans the runnable siblings per level, so fanout shapes
  // its cost and a flat root would measure the sibling scan, not the log economy.
  hsfq::SchedulingStructure tree;
  hsfq::ThreadId next_tid = 1;
  int made = 0;
  for (int t = 0; t < 100; ++t) {
    const hsfq::NodeId tenant =
        *tree.MakeNode("t" + std::to_string(t), hsfq::kRootNode,
                       1 + static_cast<hscommon::Weight>(t % 4), nullptr);
    for (int u = 0; u < 10; ++u) {
      const hsfq::NodeId user =
          *tree.MakeNode("u" + std::to_string(u), tenant,
                         1 + static_cast<hscommon::Weight>(u % 3), nullptr);
      for (int s = 0; s < 100; ++s) {
        const hsfq::NodeId leaf =
            *tree.MakeNode("s" + std::to_string(s), user, 1,
                           std::make_unique<hleaf::SfqLeafScheduler>());
        // Session leaves are created in storm-cohort-first order: the first
        // kCohort leaves carry the storm threads (contiguous tids from 1), the
        // rest one dormant thread each.
        const int nthreads = made < kCohort ? threads_per_leaf : 1;
        for (int k = 0; k < nthreads; ++k) {
          (void)tree.AttachThread(next_tid++, leaf, {});
        }
        ++made;
      }
    }
  }
  static_assert(100 * 10 * 100 == kLeaves);
  hsim::ShardSet shards(&tree, kNcpus, 2 * kMillisecond);
  shards.Reconcile();  // startup sweep (build churn overflows the log: one Resync)
  const uint64_t marks0 = tree.DirtyMarkCount();
  const uint64_t appends0 = tree.DirtyAppendCount();
  const uint64_t entries0 = shards.entries_processed();
  const uint64_t swept0 = shards.swept_leaves();
  const uint64_t fulls0 = shards.full_resyncs();
  uint64_t storms = 0;
  hscommon::Time now = 0;
  for (auto _ : state) {
    now += kMillisecond;
    hsfq::ThreadId tid = 1;
    for (int i = 0; i < kCohort; ++i) {
      for (int k = 0; k < threads_per_leaf; ++k) {
        tree.SetRun(tid++, now);
      }
    }
    shards.Reconcile();
    tid = 1;
    for (int i = 0; i < kCohort; ++i) {
      for (int k = 0; k < threads_per_leaf; ++k) {
        tree.Sleep(tid++, now);
      }
    }
    shards.Reconcile();
    ++storms;
  }
  state.SetItemsProcessed(static_cast<int64_t>(storms) * 2 * kCohort *
                          threads_per_leaf);
  const double marks = static_cast<double>(tree.DirtyMarkCount() - marks0);
  const double appends = static_cast<double>(tree.DirtyAppendCount() - appends0);
  const double touched = static_cast<double>(shards.entries_processed() - entries0 +
                                             shards.swept_leaves() - swept0);
  state.counters["dedup_x"] = benchmark::Counter(appends > 0 ? marks / appends : 0);
  state.counters["sweep_save_x"] = benchmark::Counter(
      touched > 0 ? static_cast<double>(storms) * 2 * kLeaves / touched : 0);
  state.counters["full_resyncs"] =
      benchmark::Counter(static_cast<double>(shards.full_resyncs() - fulls0));
}
BENCHMARK(BM_WakeupStorm)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

// Construction cost and footprint of the production-shaped multi-tenant tree
// (tenant -> user -> session, src/sim/multi_tenant.h) at 10^4 .. 10^6 leaves: each
// iteration builds the full System from the generated ScenarioSpec. bytes_per_leaf
// extends the memory-vs-n curve to a million leaves, where a dispatch sweep would
// dominate the benchmark wall clock; dispatch cost at scale lives in
// BM_DecisionScaleLeaves and the scale_smoke CI cell.
void BM_MultiTenantBuild(benchmark::State& state) {
  const int nleaves = static_cast<int>(state.range(0));
  state.SetLabel(std::to_string(nleaves) + "leaves");
  hsim::MultiTenantSpec spec;
  spec.tenants = 100;
  spec.sessions_per_user = 10;
  spec.users_per_tenant = static_cast<size_t>(nleaves) /
                          (spec.tenants * spec.sessions_per_user);
  spec.active_per_user = 0;  // topology only: the curve isolates structural bytes
  size_t bytes = 0;
  for (auto _ : state) {
    hsim::System sys({.ncpus = 1});
    const hsim::ScenarioSpec scenario = hsim::MakeMultiTenantScenario(spec);
    auto binding = hsim::BuildScenario(scenario, "sfq", hleaf::MakeLeafScheduler, sys);
    benchmark::DoNotOptimize(binding);
    bytes = sys.tree().ArenaFootprintBytes();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nleaves);
  state.counters["bytes_per_leaf"] =
      benchmark::Counter(static_cast<double>(bytes) / nleaves);
  state.counters["peak_rss_mb"] = benchmark::Counter(PeakRssMb());
}
BENCHMARK(BM_MultiTenantBuild)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
