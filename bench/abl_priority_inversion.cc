// Ablation: priority inversion and the paper's §4 remedy (weight transfer in an SFQ
// leaf). A low-weight thread holds a lock a high-weight thread needs while medium-weight
// hogs consume the leaf's bandwidth. We sweep the interference level and measure how long
// the high thread waits for the lock, with and without the remedy.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hscommon::Time;
using Step = hsim::ScriptedWorkload::Step;

namespace {

// Returns the time at which the high-weight thread finally acquired the lock.
Time MeasureAcquisition(int medium_hogs, bool remedy) {
  hsim::System sys(hsim::System::Config{.default_quantum = 5 * kMillisecond,
                                        .inversion_remedy = remedy});
  const auto leaf = *sys.tree().MakeNode("leaf", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const hsim::MutexId m = sys.CreateMutex();
  // Low grabs the lock at t=0; its critical section needs 100 ms of CPU.
  (void)*sys.CreateThread(
      "low", leaf, {.weight = 1},
      std::make_unique<hsim::ScriptedWorkload>(
          std::vector<Step>{Step::Compute(kMillisecond), Step::Lock(m),
                            Step::Compute(100 * kMillisecond), Step::Unlock(m),
                            Step::Compute(10 * kSecond)},
          /*loop=*/false));
  for (int i = 0; i < medium_hogs; ++i) {
    (void)*sys.CreateThread("med" + std::to_string(i), leaf, {.weight = 4},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  // High arrives at 20 ms and blocks on the lock.
  (void)*sys.CreateThread(
      "high", leaf, {.weight = 40},
      std::make_unique<hsim::ScriptedWorkload>(
          std::vector<Step>{Step::Lock(m), Step::Compute(5 * kMillisecond),
                            Step::Unlock(m)},
          /*loop=*/false),
      /*start_time=*/20 * kMillisecond);
  Time acquired_at = 0;
  sys.Every(kMillisecond, kMillisecond, [&](hsim::System& s) {
    if (acquired_at == 0 && s.HolderOf(m) != 0 && s.HolderOf(m) != hsfq::kInvalidThread) {
      acquired_at = s.now();
    }
  });
  sys.RunUntil(120 * kSecond);
  return acquired_at;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Ablation: priority inversion in an SFQ leaf and the weight-transfer "
              "remedy (paper §4)\n");
  std::printf("low (w=1) holds the lock for a 100 ms critical section; high (w=40) "
              "blocks on it at t=20 ms;\nN medium hogs (w=4 each) interfere.\n");

  TextTable table({"medium_hogs", "no_remedy_ms", "weight_transfer_ms", "speedup"});
  bool shape_ok = true;
  for (int hogs : {0, 2, 4, 8, 16}) {
    const Time without = MeasureAcquisition(hogs, /*remedy=*/false);
    const Time with = MeasureAcquisition(hogs, /*remedy=*/true);
    const double speedup = static_cast<double>(without) / static_cast<double>(with);
    if (hogs >= 4) {
      shape_ok = shape_ok && speedup > 3.0;
    }
    table.AddRow({TextTable::Int(hogs), TextTable::Num(static_cast<double>(without) / 1e6, 1),
                  TextTable::Num(static_cast<double>(with) / 1e6, 1),
                  TextTable::Num(speedup, 1)});
  }
  hbench::Emit(table, "time until the high-weight thread holds the lock", csv_dir,
               "abl_inversion");

  std::printf("\nPaper's shape: transferring the blocked thread's weight to the holder "
              "gives the holder at least the blocked thread's allocation, so the wait is"
              " bounded by CS-length / combined-share instead of growing with the "
              "interference.\n");
  std::printf("Reproduced:    %s (remedy keeps the wait ~flat as hogs grow; without it "
              "the wait scales with the hog count)\n",
              shape_ok ? "yes" : "NO");
  return 0;
}
