// Figure 1: "Variation in decompression times of frames in an MPEG compressed video
// sequence" — regenerates the plot data from the synthetic VBR model: per-frame decode
// cost varying frame-to-frame (GOP structure + noise) and scene-to-scene.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mpeg/trace.h"

using hscommon::TextTable;
using hscommon::ToMillis;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Figure 1: variation in MPEG frame decompression times\n");

  hmpeg::VbrTraceConfig config;
  config.frame_count = 3000;  // ~100 s at 30 fps, as the paper's trace
  const hmpeg::VbrTrace trace = hmpeg::VbrTrace::Generate(config);

  // The raw series (the figure's curve).
  TextTable series({"frame", "type", "decode_ms", "scene"});
  for (size_t i = 0; i < trace.size(); ++i) {
    series.AddRow({TextTable::Int(static_cast<int64_t>(i)),
                   std::string(1, hmpeg::FrameTypeChar(trace.type(i))),
                   TextTable::Num(ToMillis(trace.cost(i)), 3),
                   TextTable::Int(trace.scene(i))});
  }
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/fig01_series.csv";
    series.WriteCsv(path);
    std::printf("(full per-frame series: %s)\n", path.c_str());
  }

  // Frame-scale summary per type.
  TextTable per_type({"frame_type", "count", "mean_ms", "stddev_ms", "min_ms", "max_ms"});
  for (const auto type : {hmpeg::FrameType::kI, hmpeg::FrameType::kP, hmpeg::FrameType::kB}) {
    const hscommon::RunningStats stats = trace.CostStatsFor(type);
    per_type.AddRow({std::string(1, hmpeg::FrameTypeChar(type)),
                     TextTable::Int(static_cast<int64_t>(stats.count())),
                     TextTable::Num(stats.mean() / 1e6, 2),
                     TextTable::Num(stats.stddev() / 1e6, 2),
                     TextTable::Num(stats.min() / 1e6, 2), TextTable::Num(stats.max() / 1e6, 2)});
  }
  hbench::Emit(per_type, "frame-to-frame variation (per frame type)", csv_dir,
               "fig01_per_type");

  // Scene-scale summary: mean decode cost per scene (the seconds-scale variation).
  TextTable per_scene({"scene", "frames", "mean_ms"});
  hscommon::RunningStats scene_means;
  {
    double sum = 0.0;
    int count = 0;
    uint32_t scene = 0;
    for (size_t i = 0; i <= trace.size(); ++i) {
      if (i == trace.size() || trace.scene(i) != scene) {
        if (count > 0) {
          per_scene.AddRow({TextTable::Int(scene), TextTable::Int(count),
                            TextTable::Num(sum / count / 1e6, 2)});
          scene_means.Add(sum / count);
        }
        if (i == trace.size()) {
          break;
        }
        scene = trace.scene(i);
        sum = 0.0;
        count = 0;
      }
      sum += static_cast<double>(trace.cost(i));
      ++count;
    }
  }
  hbench::Emit(per_scene, "scene-to-scene variation (mean decode cost per scene)", csv_dir,
               "fig01_per_scene");

  const hscommon::RunningStats all = trace.CostStats();
  std::printf("\nSummary: %zu frames, overall mean %.2f ms (CoV %.2f), "
              "scene-mean CoV %.2f, peak %.2f ms\n",
              trace.size(), all.mean() / 1e6, all.coefficient_of_variation(),
              scene_means.coefficient_of_variation(), static_cast<double>(trace.PeakCost()) / 1e6);
  std::printf("Paper's shape: decode cost varies both frame-to-frame (I > P > B) and "
              "scene-to-scene, unpredictably.\n");
  std::printf("Reproduced:    I/P/B means ordered %s; scene-level CoV %.2f > 0.1.\n",
              trace.CostStatsFor(hmpeg::FrameType::kI).mean() >
                      trace.CostStatsFor(hmpeg::FrameType::kP).mean()
                  ? "yes"
                  : "NO",
              scene_means.coefficient_of_variation());
  return 0;
}
