// Microbenchmarks of the simulation substrate itself: event-queue throughput and
// simulated-seconds-per-wall-second for representative machine configurations — the
// numbers that tell a user how big an experiment they can afford.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sched/sfq_leaf.h"
#include "src/sim/event_queue.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;

namespace {

// Schedule-one/fire-one with a standing population of range(0) pending events — the
// per-event cost of the queue at a given machine "busyness". The callback carries a
// 24-byte capture, the shape of the simulator's real callbacks (thread wakeups capture
// two pointers; System::At wraps a whole std::function): storing and moving such a
// capture is part of the per-event cost being measured.
void BM_EventQueueThroughput(benchmark::State& state) {
  hsim::EventQueue q;
  const auto standing = static_cast<hscommon::Time>(state.range(0));
  hscommon::Time t = 0;
  uint64_t fired = 0;
  const uint64_t seq_weight = 3;
  for (hscommon::Time i = 0; i < standing; ++i) {
    const uint64_t when = static_cast<uint64_t>(i + 1);
    q.At(i + 1, [&fired, when, seq_weight] { fired += when * seq_weight; });
  }
  for (auto _ : state) {
    const uint64_t when = static_cast<uint64_t>(t + standing + 1);
    q.At(t + standing + 1, [&fired, when, seq_weight] { fired += when * seq_weight; });
    t = q.PopAndRun();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(64)->Arg(4096);

// Timer-rearm pattern: schedule far in the future, cancel before firing. Exercises the
// O(1) tombstone cancel plus amortized compaction; the old unordered_set-of-cancelled-ids
// implementation paid a hash insert per cancel and retained the ids indefinitely.
void BM_EventScheduleCancelStorm(benchmark::State& state) {
  hsim::EventQueue q;
  const auto standing = static_cast<int>(state.range(0));
  std::vector<hsim::EventId> pending;
  hscommon::Time t = 0;
  for (int i = 0; i < standing; ++i) {
    pending.push_back(q.At(1'000'000 + i, [] {}));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    q.Cancel(pending[cursor]);
    pending[cursor] = q.At(1'000'000 + (t++ % 1000), [] {});
    cursor = (cursor + 1) % pending.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventScheduleCancelStorm)->Arg(64)->Arg(4096);

// Simulated wall time per benchmark iteration: one simulated second of a machine with
// `threads` CPU-bound threads in one SFQ leaf (20 ms quanta -> ~50 dispatches per
// simulated second).
void BM_SimulatedSecond(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  hsim::System sys;
  auto leaf = sys.tree().MakeNode("leaf", hsfq::kRootNode, 1,
                                  std::make_unique<hleaf::SfqLeafScheduler>());
  for (int i = 0; i < threads; ++i) {
    (void)*sys.CreateThread("t" + std::to_string(i), *leaf, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  hscommon::Time horizon = 0;
  for (auto _ : state) {
    horizon += kSecond;
    sys.RunUntil(horizon);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("simulated seconds");
}
BENCHMARK(BM_SimulatedSecond)->Arg(2)->Arg(16)->Arg(128);

// The same with heavy event traffic: interactive workloads (two events per burst) and
// Poisson interrupts — the worst realistic case for the event loop.
void BM_SimulatedSecondEventHeavy(benchmark::State& state) {
  hsim::System sys;
  auto leaf = sys.tree().MakeNode("leaf", hsfq::kRootNode, 1,
                                  std::make_unique<hleaf::SfqLeafScheduler>());
  for (int i = 0; i < 16; ++i) {
    (void)*sys.CreateThread(
        "i" + std::to_string(i), *leaf, {},
        std::make_unique<hsim::InteractiveWorkload>(i + 1, 5 * kMillisecond,
                                                    kMillisecond));
  }
  sys.AddInterruptSource({.arrival = hsim::InterruptSourceConfig::Arrival::kPoisson,
                          .interval = kMillisecond,
                          .service = 50 * hscommon::kMicrosecond,
                          .exponential_service = true,
                          .seed = 3});
  hscommon::Time horizon = 0;
  for (auto _ : state) {
    horizon += kSecond;
    sys.RunUntil(horizon);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("simulated seconds, ~5k events each");
}
BENCHMARK(BM_SimulatedSecondEventHeavy);

}  // namespace

BENCHMARK_MAIN();
