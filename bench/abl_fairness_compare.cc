// Ablation: unfairness of the whole fair-queuing family under the three regimes the
// paper's related-work section argues about (§6):
//   1. steady    — all flows continuously backlogged, full fixed quanta (everyone fair);
//   2. variable  — one flow consistently uses short quanta (WFQ/SCFQ/classic-stride
//                  charge the assumed maximum and starve it; SFQ/FQS/EEVDF do not);
//   3. fluctuate — effective capacity fluctuates (interrupt-like stolen wall time) while
//                  a third flow comes and goes (wall-clock-driven v(t) in WFQ/FQS skews
//                  arrivals; self-clocked SFQ stays fair); lottery shows its short-window
//                  variance here too.
// Metric: max normalized service gap |W_f/w_f - W_m/w_m| between the two persistent
// flows, in units of the quantum, measured over windows where both are backlogged, and
// the final service ratio (ideal 1.0 at equal weights).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/prng.h"
#include "src/fair/make.h"

using hfair::Algorithm;
using hfair::FairQueue;
using hfair::FlowId;
using hscommon::kMillisecond;
using hscommon::TextTable;
using hscommon::Time;
using hscommon::Work;

namespace {

constexpr Work kQ = 10 * kMillisecond;
constexpr int kRounds = 30000;

struct Result {
  double final_ratio;      // service(flow b) / service(flow a); ideal 1.0
  double worst_gap_quanta; // max |W_a - W_b| / quantum while both backlogged
};

Result RunSteady(FairQueue& fq) {
  const FlowId a = fq.AddFlow(1);
  const FlowId b = fq.AddFlow(1);
  Time now = 0;
  fq.Arrive(a, now);
  fq.Arrive(b, now);
  double wa = 0;
  double wb = 0;
  double worst = 0;
  for (int i = 0; i < kRounds; ++i) {
    const FlowId f = fq.PickNext(now);
    now += kQ;
    (f == a ? wa : wb) += static_cast<double>(kQ);
    fq.Complete(f, kQ, now, true);
    worst = std::max(worst, std::abs(wa - wb) / static_cast<double>(kQ));
  }
  return {wb / wa, worst};
}

Result RunVariable(FairQueue& fq) {
  // Flow a uses only kQ/5 each time it is dispatched; b uses the full quantum. Both are
  // always backlogged; a fair scheduler must still deliver equal *service*.
  const FlowId a = fq.AddFlow(1);
  const FlowId b = fq.AddFlow(1);
  Time now = 0;
  fq.Arrive(a, now);
  fq.Arrive(b, now);
  double wa = 0;
  double wb = 0;
  double worst = 0;
  for (int i = 0; i < kRounds; ++i) {
    const FlowId f = fq.PickNext(now);
    const Work used = f == a ? kQ / 5 : kQ;
    now += used;
    (f == a ? wa : wb) += static_cast<double>(used);
    fq.Complete(f, used, now, true);
    worst = std::max(worst, std::abs(wa - wb) / static_cast<double>(kQ));
  }
  return {wb / wa, worst};
}

Result RunFluctuating(FairQueue& fq, uint64_t seed) {
  // Stolen wall time between quanta (interrupts / a sibling class) plus a third flow that
  // sleeps and wakes, so arrivals sample v(t) at fluctuating points.
  hscommon::Prng prng(seed);
  const FlowId a = fq.AddFlow(1);
  const FlowId b = fq.AddFlow(1);
  const FlowId c = fq.AddFlow(2);
  Time now = 0;
  fq.Arrive(a, now);
  fq.Arrive(b, now);
  bool c_active = false;
  double wa = 0;
  double wb = 0;
  double worst = 0;
  for (int i = 0; i < kRounds; ++i) {
    if (!c_active && prng.Bernoulli(0.02)) {
      fq.Arrive(c, now);
      c_active = true;
    }
    // Stolen wall time: the CPU disappears for a while (highest-priority work).
    now += static_cast<Time>(prng.UniformU64(3 * kQ));
    const FlowId f = fq.PickNext(now);
    now += kQ;
    bool keep = true;
    if (f == c && prng.Bernoulli(0.1)) {
      keep = false;
      c_active = false;
    }
    if (f == a) {
      wa += static_cast<double>(kQ);
    } else if (f == b) {
      wb += static_cast<double>(kQ);
    }
    fq.Complete(f, kQ, now, keep);
    worst = std::max(worst, std::abs(wa - wb) / static_cast<double>(kQ));
  }
  return {wb / wa, worst};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Ablation: fairness of SFQ vs the related-work algorithms (paper §6)\n");
  std::printf("Two equal-weight flows; gap = max |W_a - W_b| in quanta while both "
              "backlogged; ratio ideal = 1.0\n");

  TextTable table({"algorithm", "steady_ratio", "steady_gap", "variable_ratio",
                   "variable_gap", "fluct_ratio", "fluct_gap"});
  for (const Algorithm alg : hfair::AllAlgorithms()) {
    const Result steady = RunSteady(*hfair::MakeFairQueue(alg, kQ, 5));
    const Result variable = RunVariable(*hfair::MakeFairQueue(alg, kQ, 5));
    const Result fluct = RunFluctuating(*hfair::MakeFairQueue(alg, kQ, 5), 77);
    table.AddRow({hfair::AlgorithmName(alg), TextTable::Num(steady.final_ratio, 3),
                  TextTable::Num(steady.worst_gap_quanta, 1),
                  TextTable::Num(variable.final_ratio, 3),
                  TextTable::Num(variable.worst_gap_quanta, 1),
                  TextTable::Num(fluct.final_ratio, 3),
                  TextTable::Num(fluct.worst_gap_quanta, 1)});
  }
  hbench::Emit(table, "unfairness by regime", csv_dir, "abl_fairness");

  std::printf(
      "\nPaper's shape: every algorithm is fair when all flows are backlogged with full\n"
      "quanta; WFQ/SCFQ/classic stride starve the short-quantum flow (variable_ratio >>\n"
      "1); SFQ keeps a 2-quanta worst gap in every regime; lottery's gap grows with\n"
      "sqrt(time) even in steady state.\n");
  return 0;
}
