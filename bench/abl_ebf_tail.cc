// Ablation: the Exponentially Bounded Fluctuation (EBF) model of §3.1. With stochastic
// (Poisson) interrupt processing, the CPU's service deficit over fixed windows should
// have an exponentially decaying tail — the EBF premise — and a thread's attained
// service inherits it. We measure the empirical tail P(deficit > gamma), fit the decay
// rate, and check the EbfServer abstraction brackets the observations.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/qos/server_model.h"
#include "src/sched/sfq_leaf.h"
#include "src/sim/system.h"

using hscommon::kMicrosecond;
using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hscommon::Time;
using hscommon::Work;

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  std::printf("Ablation: EBF tail of CPU service under Poisson interrupts\n");

  // Interrupts: Poisson arrivals, mean every 2 ms, exponential service mean 200 us
  // -> ~10%% of the CPU on average.
  constexpr Time kMeanInterval = 2 * kMillisecond;
  constexpr Work kMeanService = 200 * kMicrosecond;
  const double util = static_cast<double>(kMeanService) / static_cast<double>(kMeanInterval);
  const double rate = 1.0 - util;

  hsim::System sys;
  auto leaf = sys.tree().MakeNode("leaf", hsfq::kRootNode, 1,
                                  std::make_unique<hleaf::SfqLeafScheduler>());
  auto hog = sys.CreateThread("hog", *leaf, {}, std::make_unique<hsim::CpuBoundWorkload>());
  sys.AddInterruptSource({.arrival = hsim::InterruptSourceConfig::Arrival::kPoisson,
                          .interval = kMeanInterval,
                          .service = kMeanService,
                          .exponential_service = true,
                          .seed = 1});

  // Sample cumulative service every 1 ms for 200 s; evaluate 50 ms windows.
  std::vector<Work> samples;
  sys.Every(kMillisecond, kMillisecond, [&](hsim::System& s) {
    samples.push_back(s.StatsOf(*hog).total_service);
  });
  sys.RunUntil(200 * kSecond);

  constexpr size_t kWindowMs = 50;
  std::vector<double> deficits;
  for (size_t i = 0; i + kWindowMs < samples.size(); ++i) {
    const double got = static_cast<double>(samples[i + kWindowMs] - samples[i]);
    const double expect = rate * static_cast<double>(kWindowMs) * 1e6;
    deficits.push_back(expect - got);  // positive = behind the average rate
  }

  // Empirical tail at gamma = k * 0.2 ms.
  TextTable table({"gamma_ms", "P(deficit>gamma)", "ln_P"});
  std::vector<double> gammas;
  std::vector<double> lnp;
  for (int k = 0; k <= 10; ++k) {
    const double gamma = 0.2e6 * k;
    size_t hits = 0;
    for (double d : deficits) {
      hits += d > gamma ? 1 : 0;
    }
    const double p = static_cast<double>(hits) / static_cast<double>(deficits.size());
    table.AddRow({TextTable::Num(gamma / 1e6, 1), TextTable::Num(p, 5),
                  TextTable::Num(p > 0 ? std::log(p) : -99, 2)});
    if (p > 1e-4 && k >= 2) {
      gammas.push_back(gamma);
      lnp.push_back(std::log(p));
    }
  }
  hbench::Emit(table, "empirical deficit tail (50 ms windows)", csv_dir, "abl_ebf_tail");

  // Fit the tail with the library's estimator (also unit-tested in tests/qos).
  const hqos::EbfServer ebf = hqos::FitEbfTail(deficits, rate, 0.2e6, 10);
  const double alpha = ebf.alpha;
  std::printf("\nfitted EBF decay rate alpha = %.3g per ms of deficit\n", alpha * 1e6);
  const double delta999 = ebf.DeficitAtProbability(1e-3);
  size_t violations = 0;
  for (double d : deficits) {
    violations += d > delta999 ? 1 : 0;
  }
  const double violation_rate =
      static_cast<double>(violations) / static_cast<double>(deficits.size());
  std::printf("EbfServer::DeficitAtProbability(1e-3) = %.2f ms; observed violation rate "
              "%.5f\n",
              delta999 / 1e6, violation_rate);
  std::printf("\nPaper's shape: with stochastic interrupt processing the CPU is an EBF "
              "server — deficit tails decay exponentially, so statistical (overbooked) "
              "guarantees are meaningful.\n");
  std::printf("Reproduced:    %s (alpha > 0 and the 1e-3 deficit bound holds within 3x)\n",
              alpha > 0 && violation_rate < 3e-3 ? "yes" : "NO");
  return 0;
}
