// Figure 8: hierarchical CPU allocation (the Figure 6 scheduling structure: root with
// leaves SFQ-1, SFQ-2 and an SVR4 time-sharing node).
//  (a) SFQ-1 (weight 2) and SFQ-2 (weight 6), two Dhrystone threads each; the SVR4 node
//      hosts "all the other threads in the system" whose usage fluctuates. Aggregate
//      throughputs must stay in ratio 1:3 despite the fluctuation.
//  (b) SFQ-1 and SVR4 with equal weights, 2 threads in SFQ-1 and 1 in SVR4: both nodes
//      progress and receive the same throughput (isolation of heterogeneous leaves).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/metrics.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/system.h"

using hscommon::kMicrosecond;
using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;
using hsfq::ThreadId;

namespace {

constexpr hscommon::Work kCyclesPerLoop = 10 * kMicrosecond;
constexpr hscommon::Time kDuration = 30 * kSecond;

double Loops(hscommon::Work w) {
  return static_cast<double>(w) / static_cast<double>(kCyclesPerLoop);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = hbench::CsvDir(argc, argv);
  const std::string trace_base = hbench::TraceBase(argc, argv);
  const std::string fault_spec = hbench::FaultArg(argc, argv);  // perturbs (a) only
  const int ncpus = hbench::Cpus(argc, argv);  // SMP applies to scenario (a) only
  const bool sharded = hbench::Sharded(argc, argv);  // per-CPU shards, (a) only
  const bool steal = hbench::Steal(argc, argv);
  const auto tracer = hbench::MaybeTracer(trace_base, ncpus);  // records (a) only
  std::printf("Figure 8: hierarchical CPU allocation (Figure 6 structure)%s%s\n",
              ncpus > 1 ? " [SMP]" : "",
              sharded ? (steal ? " [sharded]" : " [sharded, no steal]") : "");

  // ---------- (a) ----------
  {
    hsim::System sys({.ncpus = ncpus, .sharded = sharded, .steal = steal});
    sys.SetTracer(tracer.get());
    const auto injector = hbench::MaybeFault(fault_spec, sys);
    const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 2,
                                           std::make_unique<hleaf::SfqLeafScheduler>());
    const auto sfq2 = *sys.tree().MakeNode("sfq2", hsfq::kRootNode, 6,
                                           std::make_unique<hleaf::SfqLeafScheduler>());
    const auto svr4 = *sys.tree().MakeNode("svr4", hsfq::kRootNode, 1,
                                           std::make_unique<hleaf::TsScheduler>());
    std::vector<ThreadId> g1;
    std::vector<ThreadId> g2;
    // A start-tag scheduler can only deliver a node's proportional share if the node
    // has enough runnable threads to absorb it (sfq2's 6/9 of 4 CPUs needs >2 threads),
    // so the dhrystone population scales with the machine. One CPU keeps the paper's
    // two-thread groups — and the classic trace — exactly.
    const int per_group = std::max(2, ncpus);
    for (int i = 0; i < per_group; ++i) {
      g1.push_back(*sys.CreateThread("sfq1-dhry", sfq1, {},
                                     std::make_unique<hsim::CpuBoundWorkload>()));
      g2.push_back(*sys.CreateThread("sfq2-dhry", sfq2, {},
                                     std::make_unique<hsim::CpuBoundWorkload>()));
    }
    for (int i = 0; i < 5; ++i) {
      (void)*sys.CreateThread(
          "sys" + std::to_string(i), svr4, {.priority = 29},
          std::make_unique<hsim::BurstyWorkload>(40 + i, 5 * kMillisecond,
                                                 150 * kMillisecond, 20 * kMillisecond,
                                                 400 * kMillisecond));
    }
    hmetrics::ServiceSampler sampler(sys, kSecond, kSecond);
    sampler.Track("SFQ-1", g1);
    sampler.Track("SFQ-2", g2);
    sys.RunUntil(kDuration + kMillisecond);

    TextTable table({"second", "SFQ1_loops", "SFQ2_loops", "ratio"});
    const auto d1 = sampler.PerInterval(0);
    const auto d2 = sampler.PerInterval(1);
    hscommon::RunningStats ratios;
    for (size_t s = 0; s < d1.size(); ++s) {
      const double r = Loops(d2[s]) / Loops(d1[s]);
      ratios.Add(r);
      table.AddRow({TextTable::Int(static_cast<int64_t>(s + 1)),
                    TextTable::Num(Loops(d1[s]), 0), TextTable::Num(Loops(d2[s]), 0),
                    TextTable::Num(r, 3)});
    }
    hbench::Emit(table, "(a) aggregate throughput of SFQ-1 (w=2) and SFQ-2 (w=6)", csv_dir,
                 "fig08a");
    std::printf("\nPaper's shape: SFQ-2:SFQ-1 stays 3:1 even as the SVR4 load "
                "fluctuates.\nReproduced:    mean ratio %.3f (stddev %.3f) -> %s\n",
                ratios.mean(), ratios.stddev(),
                std::abs(ratios.mean() - 3.0) < 0.15 ? "yes" : "NO");
    hbench::ReportFaults(injector.get());
    hbench::ExportTrace(tracer.get(), trace_base);
  }

  // ---------- (b) ----------
  {
    hsim::System sys;
    const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 1,
                                           std::make_unique<hleaf::SfqLeafScheduler>());
    const auto svr4 = *sys.tree().MakeNode("svr4", hsfq::kRootNode, 1,
                                           std::make_unique<hleaf::TsScheduler>());
    const ThreadId a =
        *sys.CreateThread("sfq-t1", sfq1, {}, std::make_unique<hsim::CpuBoundWorkload>());
    const ThreadId b =
        *sys.CreateThread("sfq-t2", sfq1, {}, std::make_unique<hsim::CpuBoundWorkload>());
    const ThreadId c = *sys.CreateThread("svr4-t", svr4, {.priority = 29},
                                         std::make_unique<hsim::CpuBoundWorkload>());
    hmetrics::ServiceSampler sampler(sys, kSecond, kSecond);
    sampler.Track("SFQ-1", {a, b});
    sampler.Track("SVR4", {c});
    sys.RunUntil(kDuration + kMillisecond);

    TextTable table({"second", "SFQ1_loops", "SVR4_loops"});
    const auto d1 = sampler.PerInterval(0);
    const auto d2 = sampler.PerInterval(1);
    hscommon::RunningStats ratios;
    for (size_t s = 0; s < d1.size(); ++s) {
      ratios.Add(Loops(d1[s]) / Loops(d2[s]));
      table.AddRow({TextTable::Int(static_cast<int64_t>(s + 1)),
                    TextTable::Num(Loops(d1[s]), 0), TextTable::Num(Loops(d2[s]), 0)});
    }
    hbench::Emit(table, "(b) throughput of SFQ-1 vs SVR4 node (equal weights)", csv_dir,
                 "fig08b");
    std::printf("\nPaper's shape: both nodes progress and receive equal throughput; the "
                "SVR4 class cannot monopolize the CPU.\nReproduced:    mean "
                "SFQ-1/SVR4 ratio %.3f -> %s\n",
                ratios.mean(), std::abs(ratios.mean() - 1.0) < 0.05 ? "yes" : "NO");
  }
  return 0;
}
