// Quickstart: build a scheduling structure, run threads on the simulated machine, and
// observe hierarchical proportional sharing.
//
//   $ ./quickstart
//
// Structure (the paper's Figure 2, trimmed):
//   /                    root (SFQ over children)
//   ├── soft-rt   (w=3)  SFQ leaf — a video decoder
//   └── best-effort (w=6)
//       ├── user1 (w=1)  SFQ leaf — two compute jobs, weights 1 and 2
//       └── user2 (w=1)  SVR4 time-sharing leaf — one interactive shell + one batch job

#include <cstdio>
#include <memory>

#include "src/common/table.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

int main() {
  hsim::System sys;
  auto& tree = sys.tree();

  // 1. Build the tree. Interior nodes pass nullptr; leaves get a class scheduler.
  const auto soft = *tree.MakeNode("soft-rt", hsfq::kRootNode, 3,
                                   std::make_unique<hleaf::SfqLeafScheduler>());
  const auto be = *tree.MakeNode("best-effort", hsfq::kRootNode, 6, nullptr);
  const auto user1 = *tree.MakeNode("user1", be, 1,
                                    std::make_unique<hleaf::SfqLeafScheduler>());
  const auto user2 = *tree.MakeNode("user2", be, 1,
                                    std::make_unique<hleaf::TsScheduler>());

  // Paths resolve like file names (hsfq_parse).
  std::printf("resolved %s -> node %u\n", "/best-effort/user1", *tree.Parse("/best-effort/user1"));

  // 2. Create threads. Params are interpreted by the leaf's scheduler class.
  const auto decoder = *sys.CreateThread("decoder", soft, {.weight = 1},
                                         std::make_unique<hsim::CpuBoundWorkload>());
  const auto job_a = *sys.CreateThread("job-a", user1, {.weight = 1},
                                       std::make_unique<hsim::CpuBoundWorkload>());
  const auto job_b = *sys.CreateThread("job-b", user1, {.weight = 2},
                                       std::make_unique<hsim::CpuBoundWorkload>());
  const auto shell = *sys.CreateThread(
      "shell", user2, {.priority = 40},
      std::make_unique<hsim::InteractiveWorkload>(1, 80 * kMillisecond, 4 * kMillisecond));
  const auto batch = *sys.CreateThread("batch", user2, {.priority = 20},
                                       std::make_unique<hsim::CpuBoundWorkload>());

  // 3. Run for 30 simulated seconds.
  sys.RunUntil(30 * kSecond);

  // 4. Report attained CPU shares.
  TextTable table({"thread", "class", "share_%", "expected_%"});
  auto row = [&](hsfq::ThreadId t, const char* expected) {
    table.AddRow({sys.NameOf(t), tree.PathOf(*tree.LeafOf(t)),
                  TextTable::Num(100.0 * static_cast<double>(sys.StatsOf(t).total_service) /
                                     static_cast<double>(sys.now()),
                                 1),
                  expected});
  };
  // soft-rt gets 3/9; best-effort 6/9 split between user1 and user2; within user1, 1:2.
  row(decoder, "33.3");
  row(job_a, "11.1");
  row(job_b, "22.2");
  row(shell, "(what it asks for)");
  row(batch, "(rest of user2's 33.3)");
  table.Print();

  std::printf("\ndispatches: %llu schedule calls, %llu tag updates, CPU idle %.1f%%\n",
              static_cast<unsigned long long>(tree.schedule_count()),
              static_cast<unsigned long long>(tree.update_count()),
              100.0 * static_cast<double>(sys.idle_time()) / static_cast<double>(sys.now()));
  return 0;
}
