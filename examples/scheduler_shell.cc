// An interactive shell over the hierarchical scheduler + simulator — build a scheduling
// structure, populate it with workloads, advance simulated time, and inspect the result.
//
//   $ ./scheduler_shell            # interactive
//   $ ./scheduler_shell < script   # scripted (see `help`)
//
// Example session:
//   > mknod /video sfq 3
//   > mknod /batch rr 1
//   > spawn /video decoder cpu 1
//   > spawn /batch job cpu 1
//   > run 5
//   > stats
//   > tree

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/mpeg/player.h"
#include "src/mpeg/trace.h"
#include "src/sched/registry.h"
#include "src/sched/reserve.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/system.h"
#include "src/trace/perfetto_export.h"
#include "src/trace/trace_io.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;

namespace {

// Shell-only aliases kept for muscle memory: `ts` (the SVR4 table) and `reserves`
// (processor reserves, admission off so the sandbox never says no). Everything else
// resolves through the src/sched registry, so the shell accepts exactly the names
// every other tool does — including edf/rma, whose registry defaults keep admission
// control ON (a spawn that overcommits the leaf is rejected, like the real API).
std::unique_ptr<hsfq::LeafScheduler> MakeScheduler(const std::string& kind) {
  if (kind == "ts") {
    return std::make_unique<hleaf::TsScheduler>();
  }
  if (kind == "reserves") {
    return std::make_unique<hleaf::ReserveScheduler>(
        hleaf::ReserveScheduler::Config{.admission_control = false});
  }
  auto made = hleaf::MakeLeafScheduler(kind);
  return made.ok() ? std::move(*made) : nullptr;
}

// The mknod kind list, built from the registry's single source of truth plus the
// shell-only aliases above.
std::string SchedulerKinds() {
  std::string out;
  for (const std::string& name : hleaf::LeafSchedulerNames()) {
    out += name + "|";
  }
  return out + "ts|reserves|interior";
}

class Shell {
 public:
  Shell() : trace_(hmpeg::VbrTrace::Generate({})) {}

  void Run() {
    std::printf("hierarchical-sfq scheduler shell — type `help`\n");
    std::string line;
    for (;;) {
      std::printf("> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) {
        break;
      }
      if (!Dispatch(line)) {
        break;
      }
    }
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') {
      return true;
    }
    if (cmd == "quit" || cmd == "exit") {
      return false;
    }
    if (cmd == "help") {
      Help();
    } else if (cmd == "mknod") {
      CmdMknod(in);
    } else if (cmd == "rmnod") {
      CmdRmnod(in);
    } else if (cmd == "weight") {
      CmdWeight(in);
    } else if (cmd == "spawn") {
      CmdSpawn(in);
    } else if (cmd == "run") {
      CmdRun(in);
    } else if (cmd == "tree") {
      std::fputs(sys_.tree().DebugString().c_str(), stdout);
    } else if (cmd == "stats") {
      CmdStats();
    } else if (cmd == "trace") {
      CmdTrace(in);
    } else {
      std::printf("unknown command '%s' — try `help`\n", cmd.c_str());
    }
    return true;
  }

  static void Help() {
    std::printf("  mknod <path> <%s> <weight>\n", SchedulerKinds().c_str());
    std::printf(
        "  rmnod <path>\n"
        "  weight <path> <weight>\n"
        "  spawn <leaf-path> <name> <cpu|interactive|bursty|mpeg> [weight]\n"
        "  spawn <leaf-path> <name> periodic <period_ms> <compute_ms>\n"
        "  run <seconds>          advance simulated time\n"
        "  tree                   dump the scheduling structure\n"
        "  stats                  per-thread CPU service\n"
        "  trace start [events]   record scheduling decisions (ring of [events])\n"
        "  trace stop             detach the tracer (events kept until next start)\n"
        "  trace export <base>    write <base>.trace + <base>.json (ui.perfetto.dev)\n"
        "  quit\n");
  }

  void CmdMknod(std::istringstream& in) {
    std::string path;
    std::string kind;
    int weight = 1;
    if (!(in >> path >> kind >> weight)) {
      std::printf("usage: mknod <path> <kind> <weight>\n");
      return;
    }
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos) {
      std::printf("path must be absolute\n");
      return;
    }
    const std::string parent_path = slash == 0 ? "/" : path.substr(0, slash);
    const std::string name = path.substr(slash + 1);
    auto parent = sys_.tree().Parse(parent_path);
    if (!parent.ok()) {
      std::printf("%s\n", parent.status().ToString().c_str());
      return;
    }
    std::unique_ptr<hsfq::LeafScheduler> sched;
    if (kind != "interior") {
      sched = MakeScheduler(kind);
      if (sched == nullptr) {
        std::printf("unknown scheduler kind '%s' (valid: %s)\n", kind.c_str(),
                    SchedulerKinds().c_str());
        return;
      }
    }
    auto node = sys_.tree().MakeNode(name, *parent, static_cast<hscommon::Weight>(weight),
                                     std::move(sched));
    if (!node.ok()) {
      std::printf("%s\n", node.status().ToString().c_str());
      return;
    }
    std::printf("created %s (node %u)\n", path.c_str(), *node);
  }

  void CmdRmnod(std::istringstream& in) {
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: rmnod <path>\n");
      return;
    }
    auto node = sys_.tree().Parse(path);
    if (!node.ok()) {
      std::printf("%s\n", node.status().ToString().c_str());
      return;
    }
    const auto status = sys_.tree().RemoveNode(*node);
    std::printf("%s\n", status.ToString().c_str());
  }

  void CmdWeight(std::istringstream& in) {
    std::string path;
    int weight = 0;
    if (!(in >> path >> weight)) {
      std::printf("usage: weight <path> <weight>\n");
      return;
    }
    auto node = sys_.tree().Parse(path);
    if (!node.ok()) {
      std::printf("%s\n", node.status().ToString().c_str());
      return;
    }
    std::printf("%s\n",
                sys_.tree()
                    .SetNodeWeight(*node, static_cast<hscommon::Weight>(weight))
                    .ToString()
                    .c_str());
  }

  void CmdSpawn(std::istringstream& in) {
    std::string path;
    std::string name;
    std::string kind;
    if (!(in >> path >> name >> kind)) {
      std::printf("usage: spawn <leaf-path> <name> <kind> ...\n");
      return;
    }
    auto node = sys_.tree().Parse(path);
    if (!node.ok()) {
      std::printf("%s\n", node.status().ToString().c_str());
      return;
    }
    hsfq::ThreadParams params;
    std::unique_ptr<hsim::Workload> workload;
    if (kind == "cpu") {
      int weight = 1;
      in >> weight;
      params.weight = static_cast<hscommon::Weight>(weight);
      workload = std::make_unique<hsim::CpuBoundWorkload>();
    } else if (kind == "interactive") {
      workload = std::make_unique<hsim::InteractiveWorkload>(seed_++, 50 * kMillisecond,
                                                             5 * kMillisecond);
    } else if (kind == "bursty") {
      workload = std::make_unique<hsim::BurstyWorkload>(
          seed_++, 5 * kMillisecond, 100 * kMillisecond, 10 * kMillisecond,
          300 * kMillisecond);
    } else if (kind == "mpeg") {
      int weight = 1;
      in >> weight;
      params.weight = static_cast<hscommon::Weight>(weight);
      workload = std::make_unique<hmpeg::MpegPlayerWorkload>(
          &trace_, hmpeg::MpegPlayerWorkload::Config{});
    } else if (kind == "periodic") {
      long period_ms = 0;
      long compute_ms = 0;
      if (!(in >> period_ms >> compute_ms)) {
        std::printf("usage: spawn <path> <name> periodic <period_ms> <compute_ms>\n");
        return;
      }
      params.period = period_ms * kMillisecond;
      params.computation = compute_ms * kMillisecond;
      workload =
          std::make_unique<hsim::PeriodicWorkload>(params.period, params.computation);
    } else {
      std::printf("unknown workload kind '%s'\n", kind.c_str());
      return;
    }
    auto tid = sys_.CreateThread(name, *node, params, std::move(workload), sys_.now());
    if (!tid.ok()) {
      std::printf("%s\n", tid.status().ToString().c_str());
      return;
    }
    thread_ids_.push_back(*tid);
    std::printf("spawned '%s' (thread %llu) in %s\n", name.c_str(),
                static_cast<unsigned long long>(*tid), path.c_str());
  }

  void CmdRun(std::istringstream& in) {
    double seconds = 1.0;
    in >> seconds;
    const auto until =
        sys_.now() + static_cast<hscommon::Time>(seconds * static_cast<double>(kSecond));
    sys_.RunUntil(until);
    std::printf("simulated time now %.3f s (idle %.1f%%, %llu interrupts)\n",
                hscommon::ToSeconds(sys_.now()),
                sys_.now() > 0
                    ? 100.0 * static_cast<double>(sys_.idle_time()) /
                          static_cast<double>(sys_.now())
                    : 0.0,
                static_cast<unsigned long long>(sys_.interrupt_count()));
  }

  void CmdTrace(std::istringstream& in) {
    std::string sub;
    if (!(in >> sub)) {
      std::printf("usage: trace <start|stop|export> ...\n");
      return;
    }
    if (sub == "start") {
      size_t capacity = htrace::Tracer::kDefaultCapacity;
      in >> capacity;
      tracer_ = std::make_unique<htrace::Tracer>(capacity);
      sys_.SetTracer(tracer_.get());
      std::printf("tracing (ring of %zu events). Note: nodes created before this point "
                  "appear as placeholders in exports.\n",
                  capacity);
    } else if (sub == "stop") {
      if (tracer_ == nullptr) {
        std::printf("not tracing\n");
        return;
      }
      sys_.SetTracer(nullptr);
      std::printf("tracing stopped (%llu events recorded, %llu dropped) — `trace "
                  "export` still works\n",
                  static_cast<unsigned long long>(tracer_->ring().size()),
                  static_cast<unsigned long long>(tracer_->ring().dropped()));
    } else if (sub == "export") {
      std::string base;
      if (!(in >> base)) {
        std::printf("usage: trace export <base>\n");
        return;
      }
      if (tracer_ == nullptr) {
        std::printf("nothing recorded — `trace start` first\n");
        return;
      }
      const auto bin = htrace::WriteTraceFile(*tracer_, base + ".trace");
      const auto json = htrace::ExportPerfettoJson(*tracer_, base + ".json");
      std::printf("%s.trace: %s\n", base.c_str(), bin.ToString().c_str());
      std::printf("%s.json:  %s (load in ui.perfetto.dev)\n", base.c_str(),
                  json.ToString().c_str());
    } else {
      std::printf("unknown trace subcommand '%s'\n", sub.c_str());
    }
  }

  void CmdStats() {
    hscommon::TextTable table({"thread", "class", "cpu_s", "share_%", "dispatches"});
    for (const hsfq::ThreadId tid : thread_ids_) {
      const auto& stats = sys_.StatsOf(tid);
      const auto leaf = sys_.tree().LeafOf(tid);
      table.AddRow({sys_.NameOf(tid), leaf.ok() ? sys_.tree().PathOf(*leaf) : "-",
                    hscommon::TextTable::Num(hscommon::ToSeconds(stats.total_service), 3),
                    hscommon::TextTable::Num(
                        sys_.now() > 0 ? 100.0 * static_cast<double>(stats.total_service) /
                                             static_cast<double>(sys_.now())
                                       : 0.0,
                        1),
                    hscommon::TextTable::Int(static_cast<int64_t>(stats.dispatches))});
    }
    table.Print();
  }

  // Declared before sys_ so it outlives the system (which holds a raw pointer to it).
  std::unique_ptr<htrace::Tracer> tracer_;
  hsim::System sys_;
  hmpeg::VbrTrace trace_;
  std::vector<hsfq::ThreadId> thread_ids_;
  uint64_t seed_ = 1;
};

}  // namespace

int main() {
  Shell shell;
  shell.Run();
  return 0;
}
