// Real (non-simulated) hierarchical scheduling: the cooperative user-level runtime runs
// actual CPU work on this machine, dispatched by hsfq_schedule()/hsfq_update() with real
// clock accounting — the library as a userspace thread scheduler.
//
// Tree: /interactive (w=2, SFQ) vs /batch (w=1, SFQ); inside batch, three workers with
// weights 1:2:4. Runs ~2 wall seconds and prints attained CPU time.

#include <cstdio>
#include <memory>

#include "src/common/table.h"
#include "src/runtime/executor.h"
#include "src/sched/sfq_leaf.h"

using hscommon::kMillisecond;
using hscommon::TextTable;

namespace {

// ~50 microseconds of real CPU work.
void BurnCpu() {
  volatile uint64_t acc = 0;
  for (int i = 0; i < 20000; ++i) {
    acc += static_cast<uint64_t>(i) * 2654435761u;
  }
}

}  // namespace

int main() {
  hrt::Executor exec(hrt::Executor::Config{.quantum = 2 * kMillisecond});
  auto& tree = exec.tree();

  const auto interactive = *tree.MakeNode("interactive", hsfq::kRootNode, 2,
                                          std::make_unique<hleaf::SfqLeafScheduler>());
  const auto batch = *tree.MakeNode("batch", hsfq::kRootNode, 1,
                                    std::make_unique<hleaf::SfqLeafScheduler>());

  bool stop = false;
  auto spin = [&stop] {
    BurnCpu();
    return stop ? hrt::StepResult::kDone : hrt::StepResult::kMore;
  };

  // An "interactive" task that yields early each quantum (cooperative politeness).
  const auto ui = *exec.Spawn("ui", interactive, {.weight = 1}, [&stop] {
    BurnCpu();
    return stop ? hrt::StepResult::kDone : hrt::StepResult::kYield;
  });
  const auto render = *exec.Spawn("render", interactive, {.weight = 1}, spin);
  const auto w1 = *exec.Spawn("worker-1", batch, {.weight = 1}, spin);
  const auto w2 = *exec.Spawn("worker-2", batch, {.weight = 2}, spin);
  const auto w4 = *exec.Spawn("worker-4", batch, {.weight = 4}, spin);

  std::printf("running 5 real tasks for ~2 s of wall time...\n");
  exec.RunFor(2000 * kMillisecond);
  stop = true;
  exec.Run();

  const double total = static_cast<double>(exec.CpuTimeOf(ui) + exec.CpuTimeOf(render) +
                                           exec.CpuTimeOf(w1) + exec.CpuTimeOf(w2) +
                                           exec.CpuTimeOf(w4));
  TextTable table({"task", "class", "cpu_ms", "share_%", "ideal_%"});
  auto row = [&](hrt::ThreadId t, const char* cls, const char* ideal) {
    table.AddRow({exec.NameOf(t), cls,
                  TextTable::Num(static_cast<double>(exec.CpuTimeOf(t)) / 1e6, 1),
                  TextTable::Num(100.0 * static_cast<double>(exec.CpuTimeOf(t)) / total, 1),
                  ideal});
  };
  row(ui, "/interactive", "33.3");
  row(render, "/interactive", "33.3");
  row(w1, "/batch", "4.8");
  row(w2, "/batch", "9.5");
  row(w4, "/batch", "19.0");
  table.Print();
  std::printf("\n%llu dispatches; shares are real measured CPU time on this machine "
              "(expect a few %% of noise).\n",
              static_cast<unsigned long long>(exec.dispatches()));
  return 0;
}
