// A news-on-demand video server (one of the paper's motivating applications).
//
// The QoS manager fields stream requests: paced MPEG decoders are admitted into the
// soft real-time class with a statistical test that deliberately overbooks (VBR streams
// rarely peak together), a heartbeat task runs hard real-time, and client CGI work runs
// best-effort. The demo shows admission decisions, then measures delivered quality
// (on-time frames) under full load.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/mpeg/player.h"
#include "src/mpeg/trace.h"
#include "src/qos/manager.h"
#include "src/sim/workload.h"
#include "src/trace/perfetto_export.h"
#include "src/trace/trace_io.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

int main(int argc, char** argv) {
  // `--trace=<base>` records every scheduling decision and writes <base>.trace (binary,
  // byte-reproducible across runs — CI diffs two of them) + <base>.json (Perfetto).
  // `--fault=<spec>` arms a deterministic fault plan (see docs/robustness.md), e.g.
  // `--fault='seed=7;storm:start=5s,end=8s,every=500us,steal=200us'`.
  std::string trace_base;
  std::string fault_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_base = arg.substr(8);
    }
    if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(8);
    }
  }
  std::unique_ptr<htrace::Tracer> tracer;
  if (!trace_base.empty()) {
    tracer = std::make_unique<htrace::Tracer>();
  }

  // Short slices keep intra-class dispatch latency well under a 33 ms frame period even
  // with several decoders sharing the soft class.
  hsim::System sys(hsim::System::Config{.default_quantum = 4 * kMillisecond});
  // Attach before the QoS manager builds the class tree so exports show real paths.
  sys.SetTracer(tracer.get());
  std::unique_ptr<hsfault::FaultInjector> injector;
  if (!fault_spec.empty()) {
    auto plan = hsfault::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --fault spec: %s\n", plan.status().ToString().c_str());
      return 2;
    }
    injector = std::make_unique<hsfault::FaultInjector>(*std::move(plan));
    injector->Arm(sys);
    std::printf("(fault plan armed: %s)\n", injector->plan().ToString().c_str());
  }
  // The paper's intro scenario: the soft real-time class STARTS SMALL; when many video
  // decoders arrive, the QoS manager grows its allocation (dynamic re-partitioning).
  hqos::QosManager qos(sys, {.hard_rt_weight = 3,
                             .soft_rt_weight = 3,
                             .best_effort_weight = 12,
                             .max_quantum = 4 * kMillisecond,
                             .overload_epsilon = 0.01});

  // One shared movie catalogue: three different VBR titles at streaming resolution
  // (each needs ~12% of the CPU on average at 30 fps).
  std::vector<hmpeg::VbrTrace> titles;
  for (uint64_t seed : {101u, 202u, 303u}) {
    hmpeg::VbrTraceConfig tc;
    tc.frame_count = 3000;
    tc.seed = seed;
    tc.mean_cost_i = 8 * kMillisecond;
    tc.mean_cost_p = 5 * kMillisecond;
    tc.mean_cost_b = 3 * kMillisecond;
    titles.push_back(hmpeg::VbrTrace::Generate(tc));
  }

  // A watchdog heartbeat in the hard real-time class: 2 ms every 100 ms.
  auto heartbeat = qos.SubmitHardRt(
      "heartbeat", 100 * kMillisecond, 2 * kMillisecond,
      std::make_unique<hsim::PeriodicWorkload>(100 * kMillisecond, 2 * kMillisecond));
  std::printf("heartbeat admission: %s\n",
              heartbeat.ok() ? "ADMITTED" : heartbeat.status().ToString().c_str());

  // Stream requests arrive until the statistical test says no.
  struct Stream {
    hsfq::ThreadId thread;
    hmpeg::MpegPlayerWorkload* player;
  };
  std::vector<Stream> streams;
  TextTable admissions({"request", "title", "class_weight", "decision"});
  const hscommon::Weight small_weight = *sys.tree().GetNodeWeight(qos.soft_rt_node());
  for (int i = 0; i < 24; ++i) {
    // After the first wave of rejections, "a video conference starts": the QoS manager
    // re-partitions, growing the soft class from 3 to 12 (and shrinking best-effort).
    if (i == 8) {
      // Shrink best-effort first, then grow soft-rt; both go through the QoS manager so
      // admission capacity is recomputed.
      auto s1 = qos.SetClassWeight(qos.best_effort_node(), 3);
      auto s2 = qos.SetClassWeight(qos.soft_rt_node(), 12);
      if (!s1.ok() || !s2.ok()) {
        std::printf("re-partition failed\n");
        return 1;
      }
      std::printf("-- video conference starting: soft-rt grown %llu -> 12, best-effort "
                  "shrunk 12 -> 3 --\n",
                  static_cast<unsigned long long>(small_weight));
    }
    const hmpeg::VbrTrace& title = titles[i % titles.size()];
    // Declared demand: the title's measured per-second decode-work distribution.
    // (Scene-scale correlation makes this far wider than sqrt(30) * per-frame stddev.)
    const auto demand = title.WindowDemandStats(30);
    const double mean_rate = demand.mean();
    const double sd_rate = demand.stddev();
    auto player = std::make_unique<hmpeg::MpegPlayerWorkload>(
        &title, hmpeg::MpegPlayerWorkload::Config{
                    .mode = hmpeg::MpegPlayerWorkload::Mode::kPaced,
                    .fps = 30.0,
                    // Resynchronize after transient overload, as real players do...
                    .skip_when_late_by = 150 * kMillisecond,
                    // ...and buffer half a second of playout before starting.
                    .startup_latency = 500 * kMillisecond});
    hmpeg::MpegPlayerWorkload* raw = player.get();
    auto t = qos.SubmitSoftRt("stream" + std::to_string(i), /*weight=*/1, mean_rate,
                              sd_rate, std::move(player));
    admissions.AddRow({"stream" + std::to_string(i),
                       "title" + std::to_string(i % titles.size()),
                       TextTable::Int(static_cast<int64_t>(
                           *sys.tree().GetNodeWeight(qos.soft_rt_node()))),
                       t.ok() ? "admitted" : "REJECTED (" +
                                                 std::string(hscommon::StatusCodeName(
                                                     t.status().code())) +
                                                 ")"});
    if (t.ok()) {
      streams.push_back({*t, raw});
    }
  }
  admissions.Print();
  std::printf("admitted %zu streams (booked %.0f%% of the soft class's mean capacity)\n",
              streams.size(),
              100.0 * qos.soft_admission().MeanBooked() /
                  (qos.ClassServer(qos.soft_rt_node()).rate * 1e9));

  // Best-effort web requests hammer the machine meanwhile.
  for (int i = 0; i < 6; ++i) {
    (void)*qos.SubmitBestEffort("cgi" + std::to_string(i), "httpd", 1,
                                std::make_unique<hsim::CpuBoundWorkload>());
  }

  sys.RunUntil(60 * kSecond);

  TextTable quality({"stream", "frames", "late", "skipped", "on_time_%"});
  double worst = 100.0;
  for (size_t i = 0; i < streams.size(); ++i) {
    const auto* p = streams[i].player;
    const double shown = static_cast<double>(p->frames_decoded() + p->skipped_frames());
    const double on_time =
        100.0 * (1.0 - static_cast<double>(p->late_frames() + p->skipped_frames()) / shown);
    worst = std::min(worst, on_time);
    quality.AddRow({"stream" + std::to_string(i),
                    TextTable::Int(static_cast<int64_t>(p->frames_decoded())),
                    TextTable::Int(static_cast<int64_t>(p->late_frames())),
                    TextTable::Int(static_cast<int64_t>(p->skipped_frames())),
                    TextTable::Num(on_time, 2)});
  }
  quality.Print();
  std::printf("\nworst stream delivered %.2f%% of frames on time while %d best-effort "
              "hogs ran — the hierarchy protected the admitted streams.\n",
              worst, 6);

  if (tracer != nullptr) {
    const auto bin = htrace::WriteTraceFile(*tracer, trace_base + ".trace");
    const auto json = htrace::ExportPerfettoJson(*tracer, trace_base + ".json");
    if (!bin.ok() || !json.ok()) {
      std::printf("trace export failed: %s / %s\n", bin.ToString().c_str(),
                  json.ToString().c_str());
      return 1;
    }
    std::printf("trace: %s.trace + %s.json (load the json in ui.perfetto.dev)\n",
                trace_base.c_str(), trace_base.c_str());
  }
  return 0;
}
