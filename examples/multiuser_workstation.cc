// The paper's Figure 2 verbatim: a multiuser multimedia workstation.
//
//   /               root
//   ├── hard-rt  (w=1)  EDF leaf    — a data-acquisition task and a control loop
//   ├── soft-rt  (w=3)  SFQ leaf    — two MPEG decoders (a video conference)
//   └── best-effort (w=6)
//       ├── user1 (w=1) SFQ leaf    — compilations with explicit shares
//       └── user2 (w=1) SVR4 TS leaf— a normal interactive session
//
// Demonstrates the three headline properties: heterogeneous leaf schedulers coexist,
// classes are protected from each other (a forkbomb in user2 cannot hurt the decoders),
// and an idle class's bandwidth is redistributed by weight.

#include <cstdio>
#include <memory>

#include "src/common/table.h"
#include "src/mpeg/player.h"
#include "src/mpeg/trace.h"
#include "src/rt/edf.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/system.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::TextTable;

int main() {
  // A 5 ms slice keeps worst-case dispatch latency (two sibling quanta) inside the
  // tightest hard deadline below.
  hsim::System sys(hsim::System::Config{.default_quantum = 5 * kMillisecond});
  auto& tree = sys.tree();

  const auto hard = *tree.MakeNode(
      "hard-rt", hsfq::kRootNode, 1,
      std::make_unique<hleaf::EdfScheduler>(
          hleaf::EdfScheduler::Config{.utilization_limit = 0.1}));
  const auto soft = *tree.MakeNode("soft-rt", hsfq::kRootNode, 3,
                                   std::make_unique<hleaf::SfqLeafScheduler>());
  const auto be = *tree.MakeNode("best-effort", hsfq::kRootNode, 6, nullptr);
  const auto user1 = *tree.MakeNode("user1", be, 1,
                                    std::make_unique<hleaf::SfqLeafScheduler>());
  const auto user2 = *tree.MakeNode("user2", be, 1,
                                    std::make_unique<hleaf::TsScheduler>());

  // Hard real-time: 1 ms every 100 ms (DAQ) + 3 ms every 500 ms (control). This set is
  // feasible for a 10%-share class under the composed FC server (the class may owe two
  // sibling quanta plus the other task's burst before a job completes); a 20 ms deadline
  // would NOT be — hqos::DeterministicAdmission rejects it, and rightly so.
  auto daq_wl = std::make_unique<hsim::PeriodicWorkload>(100 * kMillisecond, kMillisecond);
  hsim::PeriodicWorkload* daq = daq_wl.get();
  (void)*sys.CreateThread("daq", hard,
                          {.period = 100 * kMillisecond, .computation = kMillisecond},
                          std::move(daq_wl));
  auto ctl_wl =
      std::make_unique<hsim::PeriodicWorkload>(500 * kMillisecond, 3 * kMillisecond);
  hsim::PeriodicWorkload* ctl = ctl_wl.get();
  (void)*sys.CreateThread("control", hard,
                          {.period = 500 * kMillisecond, .computation = 3 * kMillisecond},
                          std::move(ctl_wl));

  // Soft real-time: the two directions of a video conference.
  // Conference-quality streams (CIF-ish): cheap enough that two decoders fit in the
  // soft class's 30% share at 30 fps.
  hmpeg::VbrTraceConfig tc;
  tc.frame_count = 3000;
  tc.mean_cost_i = 7 * kMillisecond;
  tc.mean_cost_p = 4 * kMillisecond;
  tc.mean_cost_b = 2 * kMillisecond;
  const hmpeg::VbrTrace trace = hmpeg::VbrTrace::Generate(tc);
  auto cam_wl = std::make_unique<hmpeg::MpegPlayerWorkload>(
      &trace, hmpeg::MpegPlayerWorkload::Config{
                  .mode = hmpeg::MpegPlayerWorkload::Mode::kPaced, .fps = 30.0});
  hmpeg::MpegPlayerWorkload* cam = cam_wl.get();
  (void)*sys.CreateThread("decode-remote", soft, {.weight = 1}, std::move(cam_wl));
  auto self_wl = std::make_unique<hmpeg::MpegPlayerWorkload>(
      &trace, hmpeg::MpegPlayerWorkload::Config{
                  .mode = hmpeg::MpegPlayerWorkload::Mode::kPaced, .fps = 30.0});
  hmpeg::MpegPlayerWorkload* self = self_wl.get();
  (void)*sys.CreateThread("decode-local", soft, {.weight = 1}, std::move(self_wl));

  // user1: two compilations with 2:1 shares.
  const auto cc1 = *sys.CreateThread("cc-big", user1, {.weight = 2},
                                     std::make_unique<hsim::CpuBoundWorkload>());
  const auto cc2 = *sys.CreateThread("cc-small", user1, {.weight = 1},
                                     std::make_unique<hsim::CpuBoundWorkload>());

  // user2: an interactive editor... and a forkbomb of 12 CPU hogs at t=20s.
  const auto editor = *sys.CreateThread(
      "editor", user2, {.priority = 40},
      std::make_unique<hsim::InteractiveWorkload>(9, 60 * kMillisecond, 3 * kMillisecond));
  for (int i = 0; i < 12; ++i) {
    (void)*sys.CreateThread("forkbomb" + std::to_string(i), user2, {.priority = 29},
                            std::make_unique<hsim::CpuBoundWorkload>(),
                            /*start_time=*/20 * kSecond);
  }

  sys.RunUntil(60 * kSecond);

  TextTable table({"thread", "class", "cpu_share_%"});
  for (hsfq::ThreadId t : {hsfq::ThreadId{0}, 1ul, 2ul, 3ul, 4ul, 5ul, 6ul}) {
    table.AddRow({sys.NameOf(t), tree.PathOf(*tree.LeafOf(t)),
                  TextTable::Num(100.0 * static_cast<double>(sys.StatsOf(t).total_service) /
                                     static_cast<double>(sys.now()),
                                 2)});
  }
  table.Print();

  std::printf("\nprotection results after the t=20s forkbomb in user2:\n");
  std::printf("  hard-rt:  daq misses %llu/%llu, control misses %llu/%llu\n",
              static_cast<unsigned long long>(daq->deadline_misses()),
              static_cast<unsigned long long>(daq->rounds_completed()),
              static_cast<unsigned long long>(ctl->deadline_misses()),
              static_cast<unsigned long long>(ctl->rounds_completed()));
  std::printf("  soft-rt:  remote decoder %.2f%% on time, local %.2f%% on time\n",
              100.0 * (1.0 - static_cast<double>(cam->late_frames()) /
                                 static_cast<double>(cam->frames_decoded())),
              100.0 * (1.0 - static_cast<double>(self->late_frames()) /
                                 static_cast<double>(self->frames_decoded())));
  std::printf("  user1:    cc-big/cc-small service ratio %.2f (weights 2:1)\n",
              static_cast<double>(sys.StatsOf(cc1).total_service) /
                  static_cast<double>(sys.StatsOf(cc2).total_service));
  std::printf("  user2:    editor still responsive (mean sched latency %.2f ms)\n",
              sys.StatsOf(editor).sched_latency.mean() / 1e6);
  return 0;
}
