#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into the committed BENCH_sched.json.

Each positional argument is LABEL=FILE[,FILE...]: a label (e.g. "before", "after")
followed by one or more ``--benchmark_format=json`` output files whose benchmark lists
are concatenated under that label. When both "before" and "after" labels are present the
output also carries a per-benchmark speedup table (before cpu_time / after cpu_time),
which is printed to stderr as a human-readable summary.

Example:
    tools/bench_to_json.py -o BENCH_sched.json \
        before=/tmp/before_sched.json,/tmp/before_sim.json \
        after=/tmp/after_sched.json,/tmp/after_sim.json

Only the Python standard library is used.
"""

import argparse
import json
import sys


# google-benchmark's own per-run keys; anything numeric outside this set is a user
# counter (e.g. bytes_per_leaf, peak_rss_mb) and is carried through verbatim.
_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name", "run_type",
    "repetitions", "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "time_unit", "items_per_second", "bytes_per_second", "label",
    "error_occurred", "error_message", "aggregate_name", "aggregate_unit",
}


def load_runs(files):
    """Returns ({name: row}, context) for a list of google-benchmark JSON files."""
    rows = {}
    context = None
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if context is None:
            context = doc.get("context", {})
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            row = {
                "real_time": bench.get("real_time"),
                "cpu_time": bench.get("cpu_time"),
                "time_unit": bench.get("time_unit", "ns"),
            }
            if "items_per_second" in bench:
                row["items_per_second"] = bench["items_per_second"]
            if "label" in bench and bench["label"]:
                row["label"] = bench["label"]
            for key, value in bench.items():
                if key not in _STANDARD_KEYS and isinstance(value, (int, float)):
                    row[key] = value
            rows[bench["name"]] = row
    return rows, context


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", required=True, help="merged JSON to write")
    parser.add_argument(
        "runs",
        nargs="+",
        metavar="LABEL=FILE[,FILE...]",
        help="benchmark JSON files to merge under a label",
    )
    args = parser.parse_args()

    merged = {"tool": "tools/bench_to_json.py", "runs": {}}
    for spec in args.runs:
        if "=" not in spec:
            parser.error(f"expected LABEL=FILE[,FILE...], got {spec!r}")
        label, _, files = spec.partition("=")
        rows, context = load_runs(files.split(","))
        merged["runs"][label] = rows
        if context and "context" not in merged:
            merged["context"] = {
                k: context[k]
                for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_version",
                          "build_type")
                if k in context
            }

    before = merged["runs"].get("before", {})
    after = merged["runs"].get("after", {})
    common = [n for n in after if n in before]
    if common:
        speedup = {}
        print(f"{'benchmark':<44} {'before':>12} {'after':>12} {'speedup':>8}",
              file=sys.stderr)
        for name in common:
            b, a = before[name]["cpu_time"], after[name]["cpu_time"]
            if not a:
                continue
            speedup[name] = round(b / a, 3)
            unit = after[name]["time_unit"]
            print(f"{name:<44} {b:>10.1f}{unit} {a:>10.1f}{unit} "
                  f"{speedup[name]:>7.2f}x", file=sys.stderr)
        merged["speedup_before_over_after"] = speedup

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
