# CTest gate for the parallel campaign runner: --jobs=4 must produce byte-identical
# stdout, stderr, and campaign.json to --jobs=1. Run as
#   cmake -DCAMPAIGN=<fault_campaign binary> -DWORK_DIR=<scratch dir> -P this-file
# Both runs share one --out directory (the per-fault report paths are echoed into
# stdout, so differing directories would trivially break the comparison); the serial
# run's artifacts are copied aside before the parallel run overwrites them.

if(NOT CAMPAIGN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCAMPAIGN=... -DWORK_DIR=... -P campaign_jobs_check.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")

foreach(jobs 1 4)
  file(MAKE_DIRECTORY "${WORK_DIR}/out")
  execute_process(
    # 2s simulated: long enough for the rt-mem fault to trip its guard gates (1s is
    # below the governor's detection window and the campaign legitimately fails).
    COMMAND "${CAMPAIGN}" --duration=2s --jobs=${jobs} --out=${WORK_DIR}/out
    OUTPUT_FILE "${WORK_DIR}/jobs${jobs}.stdout"
    ERROR_FILE "${WORK_DIR}/jobs${jobs}.stderr"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    file(READ "${WORK_DIR}/jobs${jobs}.stderr" err)
    message(FATAL_ERROR "fault_campaign --jobs=${jobs} failed (rc=${rc}):\n${err}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E copy
    "${WORK_DIR}/out/campaign.json" "${WORK_DIR}/jobs${jobs}.campaign.json")
endforeach()

foreach(artifact stdout stderr campaign.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/jobs1.${artifact}" "${WORK_DIR}/jobs4.${artifact}"
    RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "--jobs=4 ${artifact} differs from --jobs=1 — the parallel "
                        "campaign runner lost byte-for-byte determinism")
  endif()
endforeach()

message(STATUS "campaign --jobs=4 output byte-identical to --jobs=1")
