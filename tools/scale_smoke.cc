// Scale smoke: builds a multi-tenant tree at 10^5+ leaves, drives dispatch for a
// simulated horizon with a LIVE closed-loop thread population, and verifies the
// structure stays invariant-clean — the CI cell that keeps million-leaf
// construction and dispatch from silently regressing.
//
// Reports machine-independent footprint (ArenaFootprintBytes / leaf) alongside
// process peak RSS and wall-clock phase timings, plus the sharded dispatcher's
// reconciliation telemetry (change-log entries vs sweeps — the batched-wakeup
// economy). Exits non-zero when the smoke fails: no dispatches, an invariant
// violation, a bytes/leaf blowout past --max-bytes-per-leaf, or a run slower than
// --max-wall-ms.
//
//   scale_smoke --tenants=100 --users=1000 --sessions=10 --active=1
//               --horizon-ms=50 --storm-ms=5 --cpus=4 --sharded=1
//               --max-bytes-per-leaf=700 --max-wall-ms=120000

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/resource.h>

#include "src/sched/registry.h"
#include "src/sim/multi_tenant.h"
#include "src/sim/scenario.h"
#include "src/sim/shard.h"
#include "src/sim/system.h"

namespace {

// Peak resident set in bytes (ru_maxrss is KiB on Linux).
size_t PeakRssBytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  return static_cast<size_t>(ru.ru_maxrss) * 1024;
}

// --name=value (integer) flag, or `def` when absent.
int64_t Flag(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

double WallMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  hsim::MultiTenantSpec spec;
  spec.tenants = static_cast<size_t>(Flag(argc, argv, "tenants", 100));
  spec.users_per_tenant = static_cast<size_t>(Flag(argc, argv, "users", 100));
  spec.sessions_per_user = static_cast<size_t>(Flag(argc, argv, "sessions", 10));
  spec.active_per_user = static_cast<size_t>(Flag(argc, argv, "active", 1));
  spec.seed = static_cast<uint64_t>(Flag(argc, argv, "seed", 1));
  spec.horizon = Flag(argc, argv, "horizon-ms", 100) * hscommon::kMillisecond;
  // Non-zero aligns the population's wakeups to synchronized storms every this
  // many simulated milliseconds — the adversarial batched-wakeup shape.
  spec.storm_period = Flag(argc, argv, "storm-ms", 0) * hscommon::kMillisecond;
  const int cpus = static_cast<int>(Flag(argc, argv, "cpus", 4));
  const bool sharded = Flag(argc, argv, "sharded", 1) != 0;
  const int64_t max_bytes_per_leaf = Flag(argc, argv, "max-bytes-per-leaf", 0);
  const int64_t max_wall_ms = Flag(argc, argv, "max-wall-ms", 0);

  const size_t leaves = hsim::MultiTenantLeafCount(spec);
  std::fprintf(stderr, "scale_smoke: building %zu tenants x %zu users x %zu sessions = %zu leaves\n",
               spec.tenants, spec.users_per_tenant, spec.sessions_per_user, leaves);

  hsim::System::Config config;
  config.ncpus = cpus;
  config.sharded = sharded;
  hsim::System sys(config);

  const auto wall_start = std::chrono::steady_clock::now();
  const hsim::ScenarioSpec scenario = hsim::MakeMultiTenantScenario(spec);
  auto binding = hsim::BuildScenario(scenario, "sfq", hleaf::MakeLeafScheduler, sys);
  if (!binding.ok()) {
    std::fprintf(stderr, "scale_smoke: build FAILED: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }
  if (sys.tree().NodeCount() !=
      1 + spec.tenants * (1 + spec.users_per_tenant) + leaves) {
    std::fprintf(stderr, "scale_smoke: node count mismatch (%zu)\n",
                 sys.tree().NodeCount());
    return 1;
  }
  if (hscommon::Status s = sys.tree().CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "scale_smoke: post-build invariants FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  const size_t built_bytes = sys.tree().ArenaFootprintBytes();
  const double build_wall_ms = WallMsSince(wall_start);
  // horizon-ms=0 is build-only mode: construction + invariants + footprint, no
  // dispatch smoke. With a horizon the run is a LIVE drive: every active session's
  // closed-loop thread computes, sleeps, and storms through real dispatch rounds.
  const auto run_start = std::chrono::steady_clock::now();
  if (spec.horizon > 0) {
    sys.RunUntil(spec.horizon);
  }
  const double run_wall_ms = WallMsSince(run_start);

  if (hscommon::Status s = sys.tree().CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "scale_smoke: post-run invariants FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  const uint64_t dispatches = sys.tree().schedule_count();
  if (spec.horizon > 0 && dispatches == 0) {
    std::fprintf(stderr, "scale_smoke: no dispatches over the horizon\n");
    return 1;
  }
  for (const auto& d : sys.diagnostics()) {
    std::fprintf(stderr, "scale_smoke: diagnostic: %s\n", d.what.c_str());
  }

  const size_t arena_bytes = sys.tree().ArenaFootprintBytes();
  const double bytes_per_leaf =
      static_cast<double>(arena_bytes) / static_cast<double>(leaves);
  std::printf("leaves=%zu nodes=%zu threads=%zu dispatches=%" PRIu64
              " arena_bytes=%zu built_bytes=%zu bytes_per_leaf=%.1f peak_rss_mb=%.1f"
              " build_wall_ms=%.0f run_wall_ms=%.0f\n",
              leaves, sys.tree().NodeCount(), scenario.threads.size(), dispatches,
              arena_bytes, built_bytes, bytes_per_leaf,
              static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0), build_wall_ms,
              run_wall_ms);
  if (sharded && sys.shards() != nullptr) {
    // Batched-wakeup economy: marks are kernel-hook log calls, entries what
    // survived dedup, sweeps how often reconciliation fell back to sweeping
    // (subtree-scoped vs global) — the telemetry the storm cells eyeball in CI.
    const hsim::ShardSet& sh = *sys.shards();
    std::printf("dirty_marks=%" PRIu64 " dirty_appends=%" PRIu64
                " reconcile_rounds=%" PRIu64 " entries_processed=%" PRIu64
                " full_resyncs=%" PRIu64 " subtree_resyncs=%" PRIu64
                " swept_leaves=%" PRIu64 "\n",
                sys.tree().DirtyMarkCount(), sys.tree().DirtyAppendCount(),
                sh.reconcile_rounds(), sh.entries_processed(), sh.full_resyncs(),
                sh.subtree_resyncs(), sh.swept_leaves());
  }
  if (max_bytes_per_leaf > 0 &&
      bytes_per_leaf > static_cast<double>(max_bytes_per_leaf)) {
    std::fprintf(stderr, "scale_smoke: bytes/leaf %.1f exceeds gate %" PRId64 "\n",
                 bytes_per_leaf, max_bytes_per_leaf);
    return 1;
  }
  if (max_wall_ms > 0 && build_wall_ms + run_wall_ms > static_cast<double>(max_wall_ms)) {
    std::fprintf(stderr,
                 "scale_smoke: wall clock %.0f ms (build %.0f + run %.0f) exceeds "
                 "gate %" PRId64 " ms\n",
                 build_wall_ms + run_wall_ms, build_wall_ms, run_wall_ms, max_wall_ms);
    return 1;
  }
  return 0;
}
