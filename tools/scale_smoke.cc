// Scale smoke: builds a multi-tenant tree at 10^5+ leaves, drives dispatch for a
// simulated horizon, and verifies the structure stays invariant-clean — the CI cell
// that keeps million-leaf construction and dispatch from silently regressing.
//
// Reports machine-independent footprint (ArenaFootprintBytes / leaf) alongside process
// peak RSS, and exits non-zero when the smoke fails: no dispatches, an invariant
// violation, or a bytes/leaf blowout past --max-bytes-per-leaf.
//
//   scale_smoke --tenants=100 --users=100 --sessions=10 --active=1
//               --horizon-ms=100 --cpus=4 --sharded=1 --max-bytes-per-leaf=400

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/resource.h>

#include "src/sched/registry.h"
#include "src/sim/multi_tenant.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"

namespace {

// Peak resident set in bytes (ru_maxrss is KiB on Linux).
size_t PeakRssBytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  return static_cast<size_t>(ru.ru_maxrss) * 1024;
}

// --name=value (integer) flag, or `def` when absent.
int64_t Flag(int argc, char** argv, const char* name, int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  hsim::MultiTenantSpec spec;
  spec.tenants = static_cast<size_t>(Flag(argc, argv, "tenants", 100));
  spec.users_per_tenant = static_cast<size_t>(Flag(argc, argv, "users", 100));
  spec.sessions_per_user = static_cast<size_t>(Flag(argc, argv, "sessions", 10));
  spec.active_per_user = static_cast<size_t>(Flag(argc, argv, "active", 1));
  spec.seed = static_cast<uint64_t>(Flag(argc, argv, "seed", 1));
  spec.horizon = Flag(argc, argv, "horizon-ms", 100) * hscommon::kMillisecond;
  const int cpus = static_cast<int>(Flag(argc, argv, "cpus", 4));
  const bool sharded = Flag(argc, argv, "sharded", 1) != 0;
  const int64_t max_bytes_per_leaf = Flag(argc, argv, "max-bytes-per-leaf", 0);

  const size_t leaves = hsim::MultiTenantLeafCount(spec);
  std::fprintf(stderr, "scale_smoke: building %zu tenants x %zu users x %zu sessions = %zu leaves\n",
               spec.tenants, spec.users_per_tenant, spec.sessions_per_user, leaves);

  hsim::System::Config config;
  config.ncpus = cpus;
  config.sharded = sharded;
  hsim::System sys(config);

  const hsim::ScenarioSpec scenario = hsim::MakeMultiTenantScenario(spec);
  auto binding = hsim::BuildScenario(scenario, "sfq", hleaf::MakeLeafScheduler, sys);
  if (!binding.ok()) {
    std::fprintf(stderr, "scale_smoke: build FAILED: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }
  if (sys.tree().NodeCount() !=
      1 + spec.tenants * (1 + spec.users_per_tenant) + leaves) {
    std::fprintf(stderr, "scale_smoke: node count mismatch (%zu)\n",
                 sys.tree().NodeCount());
    return 1;
  }
  if (hscommon::Status s = sys.tree().CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "scale_smoke: post-build invariants FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  const size_t built_bytes = sys.tree().ArenaFootprintBytes();
  // horizon-ms=0 is build-only mode: construction + invariants + footprint, no
  // dispatch smoke (the way the 10^6-leaf CI cell keeps its runtime bounded).
  if (spec.horizon > 0) {
    sys.RunUntil(spec.horizon);
  }

  if (hscommon::Status s = sys.tree().CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "scale_smoke: post-run invariants FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  const uint64_t dispatches = sys.tree().schedule_count();
  if (spec.horizon > 0 && dispatches == 0) {
    std::fprintf(stderr, "scale_smoke: no dispatches over the horizon\n");
    return 1;
  }
  for (const auto& d : sys.diagnostics()) {
    std::fprintf(stderr, "scale_smoke: diagnostic: %s\n", d.what.c_str());
  }

  const size_t arena_bytes = sys.tree().ArenaFootprintBytes();
  const double bytes_per_leaf =
      static_cast<double>(arena_bytes) / static_cast<double>(leaves);
  std::printf("leaves=%zu nodes=%zu threads=%zu dispatches=%" PRIu64
              " arena_bytes=%zu built_bytes=%zu bytes_per_leaf=%.1f peak_rss_mb=%.1f\n",
              leaves, sys.tree().NodeCount(), scenario.threads.size(), dispatches,
              arena_bytes, built_bytes, bytes_per_leaf,
              static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0));
  if (max_bytes_per_leaf > 0 &&
      bytes_per_leaf > static_cast<double>(max_bytes_per_leaf)) {
    std::fprintf(stderr, "scale_smoke: bytes/leaf %.1f exceeds gate %" PRId64 "\n",
                 bytes_per_leaf, max_bytes_per_leaf);
    return 1;
  }
  return 0;
}
