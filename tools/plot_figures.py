#!/usr/bin/env python3
"""Plot the paper's figures from the CSVs the bench binaries emit.

Usage:
    mkdir -p out && for b in build/bench/fig*; do $b --csv out; done
    python3 tools/plot_figures.py out plots/

Requires matplotlib (not needed to *run* any experiment — the benches print the same
series as text tables).
"""

import csv
import pathlib
import sys

import matplotlib

matplotlib.use("Agg")
import matplotlib.pyplot as plt  # noqa: E402


def read(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return rows


def col(rows, name, cast=float):
    return [cast(r[name]) for r in rows]


def save(fig, outdir, name):
    fig.tight_layout()
    fig.savefig(outdir / f"{name}.png", dpi = 150)
    plt.close(fig)
    print(f"wrote {outdir / name}.png")


def plot_fig01(csvdir, outdir):
    rows = read(csvdir / "fig01_series.csv")
    fig, ax = plt.subplots(figsize=(9, 3))
    ax.plot(col(rows, "frame", int), col(rows, "decode_ms"), lw=0.5)
    ax.set(xlabel="frame number", ylabel="decode time (ms)",
           title="Fig 1: MPEG frame decompression time")
    save(fig, outdir, "fig01")


def plot_fig05(csvdir, outdir):
    rows = read(csvdir / "fig05_series.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 3.5), sharey=True)
    for ax, sched in zip(axes, ("TS", "SFQ")):
        sub = [r for r in rows if r["sched"] == sched]
        for i in range(5):
            ax.plot(col(sub, "second", int), col(sub, f"t{i}"), label=f"thread {i}")
        ax.set(xlabel="time (s)", title=f"{sched}")
    axes[0].set_ylabel("loops per second")
    axes[1].legend(fontsize=7)
    fig.suptitle("Fig 5: five Dhrystone threads")
    save(fig, outdir, "fig05")


def plot_fig07(csvdir, outdir):
    a = read(csvdir / "fig07a_threads.csv")
    b = read(csvdir / "fig07b_depth.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 3.5))
    axes[0].plot(col(a, "threads", int), col(a, "throughput_ratio"), marker="o")
    axes[0].axhline(0.99, ls="--", c="gray")
    axes[0].set(xlabel="# threads", ylabel="hierarchical / unmodified",
                title="(a) overhead vs threads", ylim=(0.985, 1.005))
    axes[1].plot(col(b, "depth", int), col(b, "throughput_vs_depth0"), marker="o")
    axes[1].axhline(0.998, ls="--", c="gray")
    axes[1].set(xlabel="hierarchy depth", ylabel="throughput vs depth 0",
                title="(b) overhead vs depth", ylim=(0.985, 1.005))
    fig.suptitle("Fig 7: scheduling overhead")
    save(fig, outdir, "fig07")


def plot_fig08(csvdir, outdir):
    a = read(csvdir / "fig08a.csv")
    b = read(csvdir / "fig08b.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 3.5))
    axes[0].plot(col(a, "second", int), col(a, "SFQ1_loops"), label="SFQ-1 (w=2)")
    axes[0].plot(col(a, "second", int), col(a, "SFQ2_loops"), label="SFQ-2 (w=6)")
    axes[0].set(xlabel="time (s)", ylabel="loops/s", title="(a) weighted nodes, 1:3")
    axes[0].legend()
    axes[1].plot(col(b, "second", int), col(b, "SFQ1_loops"), label="SFQ-1")
    axes[1].plot(col(b, "second", int), col(b, "SVR4_loops"), label="SVR4")
    axes[1].set(xlabel="time (s)", title="(b) heterogeneous leaves, equal weights")
    axes[1].legend()
    fig.suptitle("Fig 8: hierarchical CPU allocation")
    save(fig, outdir, "fig08")


def plot_fig09(csvdir, outdir):
    rows = read(csvdir / "fig09_series.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 3.5))
    axes[0].plot(col(rows, "round", int), col(rows, "latency_ms"), lw=0.6)
    axes[0].set(xlabel="round", ylabel="ms", title="(a) scheduling latency")
    axes[1].plot(col(rows, "round", int), col(rows, "slack_ms"), lw=0.6)
    axes[1].axhline(0, ls="--", c="red")
    axes[1].set(xlabel="round", ylabel="ms", title="(b) slack (>0 = deadline met)")
    fig.suptitle("Fig 9: rate-monotonic thread1 (10 ms / 60 ms)")
    save(fig, outdir, "fig09")


def plot_fig10(csvdir, outdir):
    rows = read(csvdir / "fig10_frames.csv")
    fig, ax = plt.subplots(figsize=(6, 3.5))
    ax.plot(col(rows, "second", int), col(rows, "frames_w5"), label="weight 5")
    ax.plot(col(rows, "second", int), col(rows, "frames_w10"), label="weight 10")
    ax.set(xlabel="time (s)", ylabel="frames decoded",
           title="Fig 10: MPEG players under SFQ")
    ax.legend()
    save(fig, outdir, "fig10")


def plot_fig11(csvdir, outdir):
    rows = read(csvdir / "fig11.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 3.5))
    axes[0].plot(col(rows, "time_s"), col(rows, "thread1_loops"), label="thread 1")
    axes[0].plot(col(rows, "time_s"), col(rows, "thread2_loops"), label="thread 2")
    axes[0].set(xlabel="time (s)", ylabel="loops per ½s", title="(a) throughput")
    axes[0].legend()
    ratios = [(t, r) for t, r in zip(col(rows, "time_s"), col(rows, "ratio")) if r >= 0]
    axes[1].plot([t for t, _ in ratios], [r for _, r in ratios])
    axes[1].set(xlabel="time (s)", ylabel="thread1 / thread2", title="(b) ratio")
    fig.suptitle("Fig 11: dynamic weight changes")
    save(fig, outdir, "fig11")


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    csvdir = pathlib.Path(sys.argv[1])
    outdir = pathlib.Path(sys.argv[2])
    outdir.mkdir(parents=True, exist_ok=True)
    for fn in (plot_fig01, plot_fig05, plot_fig07, plot_fig08, plot_fig09, plot_fig10,
               plot_fig11):
        try:
            fn(csvdir, outdir)
        except FileNotFoundError as e:
            print(f"skipping {fn.__name__}: {e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
