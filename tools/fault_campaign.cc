// The fault-injection campaign runner (CI's `fault-campaign` job).
//
// For each scenario the runner:
//   1. runs an unfaulted baseline and requires the invariant checker to come back
//      clean — a violation here is a scheduler bug, and the campaign fails;
//   2. runs every fault plan in the pinned matrix TWICE and requires the two traces to
//      be byte-identical (the determinism oracle: seeded faults must not introduce
//      nondeterminism);
//   3. checks the faulted trace's invariants — structural kinds (lost thread, tree
//      inconsistency, virtual-time regression, slice pairing) fail the campaign;
//      fairness-gap violations are reported but tolerated, since a fault is allowed to
//      perturb fairness;
//   4. diffs baseline vs faulted through the blast-radius analyzer and prints first
//      divergence, changed dispatch decisions, and reconvergence.
//
// Usage:
//   fault_campaign [--scenario=fig8|churn|smp4|smp4-sharded|rt|all] [--fault=<spec>]
//                  [--duration=<dur>] [--cpus=N] [--out=<dir>]
//
// With --fault, only that plan runs (instead of the matrix). With --out, each
// blast-radius report is also written as JSON into <dir>. --cpus overrides the
// simulated CPU count of every selected scenario; the pinned `smp4` scenario is the
// fig8 tree on a 4-CPU machine (its matrix includes a CPU-targeted interrupt storm),
// and `smp4-sharded` is the same machine dispatching through per-CPU run-queue
// shards with work stealing (checked under the sharded invariant profile). The `rt`
// scenario is the src/rt video-conferencing pack (pinned seed) under the EDF leaf
// class: its unfaulted baseline must be deadline-miss-free (the set is admitted
// feasible), while faulted runs may miss — misses are reported but only structural
// violations fail the campaign.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/blast_radius.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/rt/scenario_pack.h"
#include "src/sched/registry.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"
#include "src/sim/workload.h"
#include "src/trace/replay.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::Time;
using hsfault::FaultPlan;
using hsfq::ThreadId;

namespace {

struct RunResult {
  std::vector<htrace::TraceEvent> events;
  uint64_t dropped = 0;
  uint64_t diagnostics = 0;  // recoverable anomalies the simulator survived
};

// Figure 8(a)'s scenario: SFQ-1 (w=2) and SFQ-2 (w=6) with two CPU-bound threads
// each, and an SVR4 node hosting five bursty "system" threads.
RunResult RunFig8(const FaultPlan& plan, Time duration, int ncpus,
                  bool sharded = false) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.ncpus = ncpus, .sharded = sharded});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 2,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const auto sfq2 = *sys.tree().MakeNode("sfq2", hsfq::kRootNode, 6,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const auto svr4 = *sys.tree().MakeNode("svr4", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::TsScheduler>());
  // Enough CPU-bound threads per SFQ node for its weight share to stay feasible on
  // an SMP machine (sfq2's 6/9 of 4 CPUs needs >= 3 threads to absorb). Start-tag
  // schedulers are only proportionally fair when every node can consume its share —
  // an infeasible weight makes the fairness invariant itself vacuous, not the run
  // nondeterministic. On one CPU this stays the classic fig8 pair of threads.
  const int per_group = std::max(2, ncpus);
  for (int i = 0; i < per_group; ++i) {
    (void)*sys.CreateThread("sfq1-dhry", sfq1, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
    (void)*sys.CreateThread("sfq2-dhry", sfq2, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  for (int i = 0; i < 5; ++i) {
    (void)*sys.CreateThread(
        "sys" + std::to_string(i), svr4, {.priority = 29},
        std::make_unique<hsim::BurstyWorkload>(40 + i, 5 * kMillisecond,
                                               150 * kMillisecond, 20 * kMillisecond,
                                               400 * kMillisecond));
  }
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// Structural churn under dispatch: three SFQ leaves whose threads are continually
// moved between them (the hsfq_move path), plus a transient leaf that is created and
// removed every 400 ms (the hsfq_mknod/hsfq_rmnod path).
RunResult RunChurn(const FaultPlan& plan, Time duration, int ncpus) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  std::vector<hsfq::NodeId> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(*sys.tree().MakeNode("leaf" + std::to_string(i), hsfq::kRootNode,
                                          static_cast<hscommon::Weight>(i + 1),
                                          std::make_unique<hleaf::SfqLeafScheduler>()));
  }
  std::vector<ThreadId> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(*sys.CreateThread("cpu" + std::to_string(i), leaves[i % 3], {},
                                        std::make_unique<hsim::CpuBoundWorkload>()));
  }
  for (int i = 0; i < 2; ++i) {
    threads.push_back(*sys.CreateThread(
        "burst" + std::to_string(i), leaves[i], {},
        std::make_unique<hsim::BurstyWorkload>(70 + i, 2 * kMillisecond,
                                               40 * kMillisecond, 10 * kMillisecond,
                                               120 * kMillisecond)));
  }
  // Every 50 ms, rotate one thread to the next leaf (round-robin over threads).
  auto cursor = std::make_shared<size_t>(0);
  sys.Every(50 * kMillisecond, 50 * kMillisecond,
            [threads, leaves, cursor](hsim::System& s) {
              const size_t i = (*cursor)++ % threads.size();
              const auto to = leaves[(*cursor + i) % leaves.size()];
              (void)s.tree().MoveThread(threads[i], to, {}, s.now());
            });
  // Every 400 ms, create a transient empty leaf; remove it 200 ms later.
  auto epoch = std::make_shared<int>(0);
  sys.Every(400 * kMillisecond, 400 * kMillisecond, [epoch](hsim::System& s) {
    const int e = (*epoch)++;
    auto made = s.tree().MakeNode("tmp" + std::to_string(e), hsfq::kRootNode, 2,
                                  std::make_unique<hleaf::SfqLeafScheduler>());
    if (made.ok()) {
      const auto id = *made;
      s.At(s.now() + 200 * kMillisecond,
           [id](hsim::System& s2) { (void)s2.tree().RemoveNode(id); });
    }
  });
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// The src/rt video-conferencing pack (pinned seed 42) under the EDF leaf class:
// periodic deadline-stamped decoders against a pinned-sfq best-effort background.
// The 1 ms quantum keeps non-preemptive blocking small against the 20/33 ms periods,
// so the admitted-feasible set runs miss-free when unfaulted.
RunResult RunRt(const FaultPlan& plan, Time duration, int ncpus) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.default_quantum = 1 * kMillisecond, .ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  const hsim::ScenarioSpec spec = hrt::VideoConfScenario(/*seed=*/42);
  auto binding = hsim::BuildScenario(spec, "edf", hleaf::MakeLeafScheduler, sys);
  if (!binding.ok()) {
    std::fprintf(stderr, "rt scenario failed to build: %s\n",
                 binding.status().ToString().c_str());
    std::exit(2);
  }
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// Default CPU count per scenario (overridable with --cpus): the pinned SMP scenario
// runs the fig8 tree on a 4-CPU machine, everything else stays single-CPU.
int DefaultCpusFor(const std::string& scenario) {
  return scenario == "smp4" || scenario == "smp4-sharded" ? 4 : 1;
}

RunResult RunScenario(const std::string& name, const FaultPlan& plan, Time duration,
                      int ncpus) {
  if (name == "churn") return RunChurn(plan, duration, ncpus);
  if (name == "rt") return RunRt(plan, duration, ncpus);
  // fig8, smp4, and smp4-sharded share the tree; the last dispatches through shards.
  return RunFig8(plan, duration, ncpus, name == "smp4-sharded");
}

// Checker profile per scenario: sharded dispatch commits shard-key order, not
// per-node SFQ tag order, and the steal rule widens sibling gaps by a few steal
// windows (src/fault/invariant_checker.h).
hsfault::InvariantChecker::Options CheckerOptionsFor(const std::string& scenario) {
  hsfault::InvariantChecker::Options opts;
  if (scenario == "smp4-sharded") {
    opts.ordered_pick_tags = false;
    opts.steal_drift_allowance = 4 * hsim::System::Config{}.steal_window;
  }
  if (scenario == "rt") {
    // The pinned population is admitted-feasible under EDF at 1 CPU, so a deadline
    // miss is a scheduler (or admission) bug on the baseline. Faulted runs may miss;
    // HasHardViolation tolerates the kDeadlineMiss kind there.
    opts.expect_no_deadline_miss = true;
  }
  return opts;
}

// Fault plans pinned per scenario: fixed seeds so CI compares like with like.
std::vector<std::string> MatrixFor(const std::string& scenario) {
  if (scenario == "churn") {
    return {
        "seed=2101;storm:start=1s,end=3s,every=250us,steal=100us",
        "seed=2102;drop-wakeup:p=0.2,recovery=25ms",
        "seed=2103;cswitch-spike:p=0.15,cost=300us;clock-jitter:p=0.5,frac=0.2",
    };
  }
  if (scenario == "smp4") {
    return {
        // The storm pins to CPU 2: only that CPU's slices stretch, the others keep
        // computing — the per-CPU fault model the single-CPU campaign cannot exercise.
        "seed=3101;storm:start=2s,end=3s,every=200us,steal=150us,cpu=2",
        "seed=3102;drop-wakeup:p=0.2,recovery=25ms",
        "seed=3103;cswitch-spike:p=0.1,cost=300us",
    };
  }
  if (scenario == "smp4-sharded") {
    return {
        // A pinned storm skews one shard's progress, forcing fairness steals; dropped
        // wakeups churn shard membership through the resync path.
        "seed=3201;storm:start=2s,end=3s,every=200us,steal=150us,cpu=2",
        "seed=3202;drop-wakeup:p=0.2,recovery=25ms",
        "seed=3203;cswitch-spike:p=0.1,cost=300us",
    };
  }
  if (scenario == "rt") {
    return {
        // Each plan attacks a different deadline path: stolen cycles shrink the
        // schedulable headroom, delayed wakeups push releases toward their deadlines,
        // and jittered clocks perturb the EDF ordering keys.
        "seed=4101;storm:start=2s,end=3s,every=200us,steal=150us",
        "seed=4102;delay-wakeup:p=0.3,delay=5ms",
        "seed=4103;clock-jitter:p=0.5,frac=0.2",
    };
  }
  return {
      "seed=1101;drop-wakeup:p=0.2,recovery=25ms",
      "seed=1102;delay-wakeup:p=0.3,delay=5ms",
      "seed=1103;clock-jitter:p=0.5,frac=0.25",
      "seed=1104;cswitch-spike:p=0.1,cost=300us",
      "seed=1105;storm:start=2s,end=3s,every=200us,steal=150us",
      "seed=1106;spurious-wake:every=150ms",
      "seed=1107;crash:at=3s,thread=6",
  };
}

// Structural violation kinds fail the campaign even on faulted runs; fairness gaps
// and deadline misses are tolerated there (a fault may legitimately disturb fairness
// or push an RT job past its deadline).
bool HasHardViolation(const std::vector<hsfault::InvariantChecker::Violation>& vs) {
  for (const auto& v : vs) {
    if (v.kind != hsfault::InvariantChecker::Violation::Kind::kFairnessGap &&
        v.kind != hsfault::InvariantChecker::Violation::Kind::kDeadlineMiss) {
      return true;
    }
  }
  return false;
}

std::string Flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario_flag = Flag(argc, argv, "scenario");
  const std::string fault_flag = Flag(argc, argv, "fault");
  const std::string out_dir = Flag(argc, argv, "out");
  Time duration = 8 * kSecond;
  if (const std::string d = Flag(argc, argv, "duration"); !d.empty()) {
    auto parsed = hsfault::ParseDuration(d);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --duration: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    duration = *parsed;
  }

  int cpus_override = 0;  // 0 = per-scenario default
  if (const std::string c = Flag(argc, argv, "cpus"); !c.empty()) {
    cpus_override = std::atoi(c.c_str());
    if (cpus_override < 1 || cpus_override > 64) {
      std::fprintf(stderr, "bad --cpus=%s (want 1..64)\n", c.c_str());
      return 2;
    }
  }

  std::vector<std::string> scenarios;
  if (scenario_flag.empty() || scenario_flag == "all") {
    scenarios = {"fig8", "churn", "smp4", "smp4-sharded", "rt"};
  } else if (scenario_flag == "fig8" || scenario_flag == "churn" ||
             scenario_flag == "smp4" || scenario_flag == "smp4-sharded" ||
             scenario_flag == "rt") {
    scenarios = {scenario_flag};
  } else {
    std::fprintf(stderr,
                 "unknown --scenario=%s (want fig8, churn, smp4, smp4-sharded, rt, "
                 "or all)\n",
                 scenario_flag.c_str());
    return 2;
  }

  int failures = 0;
  for (const std::string& scenario : scenarios) {
    const int ncpus = cpus_override > 0 ? cpus_override : DefaultCpusFor(scenario);
    std::printf("=== scenario %s (%.1fs simulated, %d cpu%s) ===\n", scenario.c_str(),
                hscommon::ToSeconds(duration), ncpus, ncpus == 1 ? "" : "s");

    const RunResult baseline = RunScenario(scenario, FaultPlan{}, duration, ncpus);
    {
      hsfault::InvariantChecker checker(CheckerOptionsFor(scenario));
      checker.SetDropped(baseline.dropped);
      for (size_t i = 0; i < baseline.events.size(); ++i) {
        checker.OnEvent(baseline.events[i], i);
      }
      checker.Finish();
      std::printf("baseline: %zu events, %s\n", baseline.events.size(),
                  checker.Report().c_str());
      if (!checker.clean()) {
        std::fprintf(stderr, "FAIL: unfaulted baseline violates invariants\n");
        ++failures;
        continue;
      }
      if (baseline.diagnostics != 0) {
        std::fprintf(stderr, "FAIL: unfaulted baseline reported %llu diagnostics\n",
                     static_cast<unsigned long long>(baseline.diagnostics));
        ++failures;
        continue;
      }
    }

    const std::vector<std::string> matrix =
        fault_flag.empty() ? MatrixFor(scenario)
                           : std::vector<std::string>{fault_flag};
    int index = 0;
    for (const std::string& spec : matrix) {
      ++index;
      auto plan = FaultPlan::Parse(spec);
      if (!plan.ok()) {
        std::fprintf(stderr, "FAIL: bad fault spec '%s': %s\n", spec.c_str(),
                     plan.status().ToString().c_str());
        ++failures;
        continue;
      }
      std::printf("\n--- fault %d: %s ---\n", index, spec.c_str());

      const RunResult run1 = RunScenario(scenario, *plan, duration, ncpus);
      const RunResult run2 = RunScenario(scenario, *plan, duration, ncpus);
      const htrace::TraceDiff determinism = htrace::DiffTraces(run1.events, run2.events);
      if (!determinism.identical) {
        std::fprintf(stderr, "FAIL: faulted run is not deterministic:\n%s\n",
                     determinism.description.c_str());
        ++failures;
        continue;
      }
      std::printf("determinism: two runs byte-identical (%zu events)\n",
                  run1.events.size());

      hsfault::InvariantChecker checker(CheckerOptionsFor(scenario));
      checker.SetDropped(run1.dropped);
      for (size_t i = 0; i < run1.events.size(); ++i) {
        checker.OnEvent(run1.events[i], i);
      }
      checker.Finish();
      std::printf("invariants: %s\n", checker.Report().c_str());
      if (HasHardViolation(checker.violations())) {
        std::fprintf(stderr, "FAIL: faulted run broke a structural invariant\n");
        ++failures;
      }

      const hsfault::BlastRadiusReport blast =
          hsfault::AnalyzeBlastRadius(baseline.events, run1.events);
      std::printf("%s", hsfault::FormatBlastRadiusReport(blast).c_str());
      if (!out_dir.empty()) {
        const std::string path =
            out_dir + "/" + scenario + "_fault" + std::to_string(index) + ".json";
        const auto written = hsfault::WriteBlastRadiusJson(blast, path);
        if (written.ok()) {
          std::printf("(report: %s)\n", path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                       written.ToString().c_str());
        }
      }
    }
    std::printf("\n");
  }

  if (failures > 0) {
    std::fprintf(stderr, "fault campaign FAILED: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("fault campaign passed\n");
  return 0;
}
