// The fault-injection campaign runner (CI's `fault-campaign` job).
//
// For each scenario the runner:
//   1. runs an unfaulted baseline and requires the invariant checker to come back
//      clean — a violation here is a scheduler bug, and the campaign fails;
//   2. runs every fault plan in the pinned matrix TWICE and requires the two traces to
//      be byte-identical (the determinism oracle: seeded faults must not introduce
//      nondeterminism);
//   3. checks the faulted trace's invariants — structural kinds (lost thread, tree
//      inconsistency, virtual-time regression, slice pairing) fail the campaign;
//      fairness-gap violations are reported but tolerated, since a fault is allowed to
//      perturb fairness;
//   4. diffs baseline vs faulted through the blast-radius analyzer and prints first
//      divergence, changed dispatch decisions, and reconvergence.
//
// Usage:
//   fault_campaign [--scenario=fig8|churn|smp4|smp4-sharded|rt|rt-inversion|rt-mem|
//                              rt-correlated|all]
//                  [--fault=<spec>] [--duration=<dur>] [--cpus=N] [--out=<dir>]
//                  [--jobs=N]
//
// With --jobs=N, up to N scenarios run concurrently, each on its own isolated
// System + tracer (the simulations share no mutable state). Every scenario's output
// is buffered and flushed in scenario order, and the campaign summary is assembled
// in the same order — so the bytes on stdout/stderr and in campaign.json are
// IDENTICAL to a --jobs=1 run (CI's parallel-campaign determinism gate compares
// them). --jobs=1 (the default) takes the same buffered path.
//
// With --fault, only that plan runs (instead of the matrix). With --out, each
// blast-radius report is also written as JSON into <dir>, plus a campaign-level
// summary (<dir>/campaign.json — schema-checked by CI). --cpus overrides the
// simulated CPU count of every selected scenario; the pinned `smp4` scenario is the
// fig8 tree on a 4-CPU machine (its matrix includes a CPU-targeted interrupt storm),
// and `smp4-sharded` is the same machine dispatching through per-CPU run-queue
// shards with work stealing (checked under the sharded invariant profile). The `rt`
// scenario is the src/rt video-conferencing pack (pinned seed) under the EDF leaf
// class: its unfaulted baseline must be deadline-miss-free (the set is admitted
// feasible), while faulted runs may miss — misses are reported but only structural
// violations fail the campaign.
//
// Three scenarios cover the overload-governor and the robustness fault kinds:
//   rt-inversion   the classic low/medium/high mutex scenario on an RMA leaf, faulted
//                  with `priority-inversion` pins against the inheritance remedy;
//   rt-mem         a governed EDF tree under `mem-pressure`: run twice more with the
//                  governor OFF (the victim must miss-storm) and ON (the victim must be
//                  demoted within one detection window, every surviving RT leaf must
//                  finish miss-free, and the §3 fairness gap of the backlogged
//                  best-effort siblings must stay within bound after the demote);
//   rt-correlated  the governed tree under a `correlated:` cascade whose api-fail
//                  burst also gates the governor's own mknod/move calls, exercising
//                  its bounded-backoff retry path (checked by the governor-protocol
//                  invariant rules).

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/blast_radius.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/guard/governor.h"
#include "src/rt/edf.h"
#include "src/rt/rma.h"
#include "src/rt/scenario_pack.h"
#include "src/sched/registry.h"
#include "src/sched/sfq_leaf.h"
#include "src/sched/ts_svr4.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"
#include "src/sim/workload.h"
#include "src/trace/reader.h"
#include "src/trace/replay.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::Time;
using hsfault::FaultPlan;
using hsfq::ThreadId;

namespace {

// printf-append into a per-scenario buffer: every line a scenario produces goes
// through here so concurrent workers never interleave on the real streams — the
// buffers are flushed in scenario order, making --jobs=N output byte-identical to
// serial.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void Append(std::string& buf, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n > 0) {
    const size_t old = buf.size();
    buf.resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data() + old, static_cast<size_t>(n) + 1, fmt, ap2);
    buf.resize(old + static_cast<size_t>(n));
  }
  va_end(ap2);
}

struct RunResult {
  std::vector<htrace::TraceEvent> events;
  uint64_t dropped = 0;
  uint64_t diagnostics = 0;  // recoverable anomalies the simulator survived
};

// Figure 8(a)'s scenario: SFQ-1 (w=2) and SFQ-2 (w=6) with two CPU-bound threads
// each, and an SVR4 node hosting five bursty "system" threads.
RunResult RunFig8(const FaultPlan& plan, Time duration, int ncpus,
                  bool sharded = false) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.ncpus = ncpus, .sharded = sharded});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  const auto sfq1 = *sys.tree().MakeNode("sfq1", hsfq::kRootNode, 2,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const auto sfq2 = *sys.tree().MakeNode("sfq2", hsfq::kRootNode, 6,
                                         std::make_unique<hleaf::SfqLeafScheduler>());
  const auto svr4 = *sys.tree().MakeNode("svr4", hsfq::kRootNode, 1,
                                         std::make_unique<hleaf::TsScheduler>());
  // Enough CPU-bound threads per SFQ node for its weight share to stay feasible on
  // an SMP machine (sfq2's 6/9 of 4 CPUs needs >= 3 threads to absorb). Start-tag
  // schedulers are only proportionally fair when every node can consume its share —
  // an infeasible weight makes the fairness invariant itself vacuous, not the run
  // nondeterministic. On one CPU this stays the classic fig8 pair of threads.
  const int per_group = std::max(2, ncpus);
  for (int i = 0; i < per_group; ++i) {
    (void)*sys.CreateThread("sfq1-dhry", sfq1, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
    (void)*sys.CreateThread("sfq2-dhry", sfq2, {},
                            std::make_unique<hsim::CpuBoundWorkload>());
  }
  for (int i = 0; i < 5; ++i) {
    (void)*sys.CreateThread(
        "sys" + std::to_string(i), svr4, {.priority = 29},
        std::make_unique<hsim::BurstyWorkload>(40 + i, 5 * kMillisecond,
                                               150 * kMillisecond, 20 * kMillisecond,
                                               400 * kMillisecond));
  }
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// Structural churn under dispatch: three SFQ leaves whose threads are continually
// moved between them (the hsfq_move path), plus a transient leaf that is created and
// removed every 400 ms (the hsfq_mknod/hsfq_rmnod path).
RunResult RunChurn(const FaultPlan& plan, Time duration, int ncpus) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  std::vector<hsfq::NodeId> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(*sys.tree().MakeNode("leaf" + std::to_string(i), hsfq::kRootNode,
                                          static_cast<hscommon::Weight>(i + 1),
                                          std::make_unique<hleaf::SfqLeafScheduler>()));
  }
  std::vector<ThreadId> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(*sys.CreateThread("cpu" + std::to_string(i), leaves[i % 3], {},
                                        std::make_unique<hsim::CpuBoundWorkload>()));
  }
  for (int i = 0; i < 2; ++i) {
    threads.push_back(*sys.CreateThread(
        "burst" + std::to_string(i), leaves[i], {},
        std::make_unique<hsim::BurstyWorkload>(70 + i, 2 * kMillisecond,
                                               40 * kMillisecond, 10 * kMillisecond,
                                               120 * kMillisecond)));
  }
  // Every 50 ms, rotate one thread to the next leaf (round-robin over threads).
  auto cursor = std::make_shared<size_t>(0);
  sys.Every(50 * kMillisecond, 50 * kMillisecond,
            [threads, leaves, cursor](hsim::System& s) {
              const size_t i = (*cursor)++ % threads.size();
              const auto to = leaves[(*cursor + i) % leaves.size()];
              (void)s.tree().MoveThread(threads[i], to, {}, s.now());
            });
  // Every 400 ms, create a transient empty leaf; remove it 200 ms later.
  auto epoch = std::make_shared<int>(0);
  sys.Every(400 * kMillisecond, 400 * kMillisecond, [epoch](hsim::System& s) {
    const int e = (*epoch)++;
    auto made = s.tree().MakeNode("tmp" + std::to_string(e), hsfq::kRootNode, 2,
                                  std::make_unique<hleaf::SfqLeafScheduler>());
    if (made.ok()) {
      const auto id = *made;
      s.At(s.now() + 200 * kMillisecond,
           [id](hsim::System& s2) { (void)s2.tree().RemoveNode(id); });
    }
  });
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// The src/rt video-conferencing pack (pinned seed 42) under the EDF leaf class:
// periodic deadline-stamped decoders against a pinned-sfq best-effort background.
// The 1 ms quantum keeps non-preemptive blocking small against the 20/33 ms periods,
// so the admitted-feasible set runs miss-free when unfaulted.
RunResult RunRt(const FaultPlan& plan, Time duration, int ncpus) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.default_quantum = 1 * kMillisecond, .ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  const hsim::ScenarioSpec spec = hrt::VideoConfScenario(/*seed=*/42);
  auto binding = hsim::BuildScenario(spec, "edf", hleaf::MakeLeafScheduler, sys);
  if (!binding.ok()) {
    std::fprintf(stderr, "rt scenario failed to build: %s\n",
                 binding.status().ToString().c_str());
    std::exit(2);
  }
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// Governed RT tree shared by rt-mem and rt-correlated: the mem-pressure victim leaf
// "rt-a" (one decoder, U = 0.2, thread 0 — the pinned plans carry thread=0) and the
// protected survivor leaf "rt-b" (two audio threads, U = 0.1) against two backlogged
// best-effort SFQ leaves, with an OverloadGovernor (src/guard) attached. The governor
// runs with trip_windows = 1 so a mitigation lands within one detection window of the
// first bad window — the acceptance gate CheckGuardGates enforces. `gate_governor`
// wires the injector's api-fault gate into the governor, so a correlated burst can
// fail the governor's own mknod/move calls and exercise its bounded-backoff path.
RunResult RunGuard(const FaultPlan& plan, Time duration, int ncpus, bool governed,
                   bool gate_governor) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.default_quantum = 1 * kMillisecond, .ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);
  hguard::OverloadGovernor::Config gcfg;
  gcfg.trip_windows = 1;
  hguard::OverloadGovernor governor(gcfg);
  if (governed) {
    if (gate_governor) governor.SetFaultGate(injector.ApiFaultGate());
    governor.Attach(sys);
  }

  const auto rt_a = *sys.tree().MakeNode("rt-a", hsfq::kRootNode, 4,
                                         std::make_unique<hleaf::EdfScheduler>());
  const auto rt_b = *sys.tree().MakeNode("rt-b", hsfq::kRootNode, 6,
                                         std::make_unique<hleaf::EdfScheduler>());
  const auto be1 = *sys.tree().MakeNode("be1", hsfq::kRootNode, 2,
                                        std::make_unique<hleaf::SfqLeafScheduler>());
  const auto be2 = *sys.tree().MakeNode("be2", hsfq::kRootNode, 2,
                                        std::make_unique<hleaf::SfqLeafScheduler>());
  (void)*sys.CreateThread(
      "victim", rt_a, {.period = 20 * kMillisecond, .computation = 4 * kMillisecond},
      std::make_unique<hsim::RtPeriodicWorkload>(20 * kMillisecond, 4 * kMillisecond));
  for (int i = 0; i < 2; ++i) {
    (void)*sys.CreateThread(
        "audio" + std::to_string(i), rt_b,
        {.period = 40 * kMillisecond, .computation = 2 * kMillisecond},
        std::make_unique<hsim::RtPeriodicWorkload>(40 * kMillisecond,
                                                   2 * kMillisecond));
  }
  (void)*sys.CreateThread("be1-dhry", be1, {},
                          std::make_unique<hsim::CpuBoundWorkload>());
  (void)*sys.CreateThread("be2-dhry", be2, {},
                          std::make_unique<hsim::CpuBoundWorkload>());
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// The classic three-thread priority-inversion scenario on an RMA leaf (paper §4's
// inheritance discussion): a low-rate holder and a high-rate waiter share a mutex
// while a medium-rate compute thread preempts the holder. The priority-inversion
// fault kind pins the holder inside its critical section; RMA's
// OnResourceBlocked/Released inheritance remedy bounds the waiter's blocking.
RunResult RunInversion(const FaultPlan& plan, Time duration, int ncpus) {
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, ncpus);
  hsim::System sys({.default_quantum = 1 * kMillisecond, .ncpus = ncpus});
  sys.SetTracer(&tracer);
  hsfault::FaultInjector injector(plan);
  if (!plan.empty()) injector.Arm(sys);

  const auto rma = *sys.tree().MakeNode("rma", hsfq::kRootNode, 4,
                                        std::make_unique<hleaf::RmaScheduler>());
  const auto be = *sys.tree().MakeNode("be", hsfq::kRootNode, 2,
                                       std::make_unique<hleaf::SfqLeafScheduler>());
  const hsim::MutexId m = sys.CreateMutex();
  using Step = hsim::ScriptedWorkload::Step;
  // Thread 0: the low-priority holder (longest period) — the pinned plans target it.
  // Its 4 ms critical section and the waiter's drifting cycle length collide a few
  // times per second, so every plan gets a steady stream of contended acquires.
  (void)*sys.CreateThread(
      "inv-low", rma, {.period = 100 * kMillisecond, .computation = 5 * kMillisecond},
      std::make_unique<hsim::ScriptedWorkload>(
          std::vector<Step>{Step::Lock(m), Step::Compute(4 * kMillisecond),
                            Step::Unlock(m), Step::SleepFor(30 * kMillisecond)},
          /*loop=*/true));
  // Thread 1: the high-priority waiter that contends for the same mutex.
  (void)*sys.CreateThread(
      "inv-high", rma, {.period = 20 * kMillisecond, .computation = 2 * kMillisecond},
      std::make_unique<hsim::ScriptedWorkload>(
          std::vector<Step>{Step::SleepFor(6 * kMillisecond), Step::Lock(m),
                            Step::Compute(1 * kMillisecond), Step::Unlock(m),
                            Step::SleepFor(12 * kMillisecond)},
          /*loop=*/true));
  // Thread 2: the medium-rate compute thread that preempts the pinned holder.
  (void)*sys.CreateThread(
      "inv-med", rma, {.period = 50 * kMillisecond, .computation = 5 * kMillisecond},
      std::make_unique<hsim::ScriptedWorkload>(
          std::vector<Step>{Step::Compute(4 * kMillisecond),
                            Step::SleepFor(8 * kMillisecond)},
          /*loop=*/true));
  (void)*sys.CreateThread("be-dhry", be, {},
                          std::make_unique<hsim::CpuBoundWorkload>());
  sys.RunUntil(duration);
  return RunResult{tracer.MergedSnapshot(), tracer.TotalDropped(),
                   sys.diagnostic_count()};
}

// Default CPU count per scenario (overridable with --cpus): the pinned SMP scenario
// runs the fig8 tree on a 4-CPU machine, everything else stays single-CPU.
int DefaultCpusFor(const std::string& scenario) {
  return scenario == "smp4" || scenario == "smp4-sharded" ? 4 : 1;
}

RunResult RunScenario(const std::string& name, const FaultPlan& plan, Time duration,
                      int ncpus) {
  if (name == "churn") return RunChurn(plan, duration, ncpus);
  if (name == "rt") return RunRt(plan, duration, ncpus);
  if (name == "rt-inversion") return RunInversion(plan, duration, ncpus);
  if (name == "rt-mem") {
    return RunGuard(plan, duration, ncpus, /*governed=*/true, /*gate_governor=*/false);
  }
  if (name == "rt-correlated") {
    return RunGuard(plan, duration, ncpus, /*governed=*/true, /*gate_governor=*/true);
  }
  // fig8, smp4, and smp4-sharded share the tree; the last dispatches through shards.
  return RunFig8(plan, duration, ncpus, name == "smp4-sharded");
}

// Checker profile per scenario: sharded dispatch commits shard-key order, not
// per-node SFQ tag order, and the steal rule widens sibling gaps by a few steal
// windows (src/fault/invariant_checker.h).
hsfault::InvariantChecker::Options CheckerOptionsFor(const std::string& scenario) {
  hsfault::InvariantChecker::Options opts;
  if (scenario == "smp4-sharded") {
    opts.ordered_pick_tags = false;
    opts.steal_drift_allowance = 4 * hsim::System::Config{}.steal_window;
  }
  if (scenario == "rt" || scenario == "rt-mem" || scenario == "rt-correlated") {
    // The pinned populations are admitted-feasible under EDF at 1 CPU, so a deadline
    // miss is a scheduler (or admission) bug on the baseline. Faulted runs may miss;
    // HasHardViolation tolerates the kDeadlineMiss kind there (and the checker
    // exempts a leaf the governor demoted — its guarantee was deliberately revoked).
    opts.expect_no_deadline_miss = true;
  }
  return opts;
}

// Fault plans pinned per scenario: fixed seeds so CI compares like with like.
std::vector<std::string> MatrixFor(const std::string& scenario) {
  if (scenario == "churn") {
    return {
        "seed=2101;storm:start=1s,end=3s,every=250us,steal=100us",
        "seed=2102;drop-wakeup:p=0.2,recovery=25ms",
        "seed=2103;cswitch-spike:p=0.15,cost=300us;clock-jitter:p=0.5,frac=0.2",
    };
  }
  if (scenario == "smp4") {
    return {
        // The storm pins to CPU 2: only that CPU's slices stretch, the others keep
        // computing — the per-CPU fault model the single-CPU campaign cannot exercise.
        "seed=3101;storm:start=2s,end=3s,every=200us,steal=150us,cpu=2",
        "seed=3102;drop-wakeup:p=0.2,recovery=25ms",
        "seed=3103;cswitch-spike:p=0.1,cost=300us",
    };
  }
  if (scenario == "smp4-sharded") {
    return {
        // A pinned storm skews one shard's progress, forcing fairness steals; dropped
        // wakeups churn shard membership through the resync path.
        "seed=3201;storm:start=2s,end=3s,every=200us,steal=150us,cpu=2",
        "seed=3202;drop-wakeup:p=0.2,recovery=25ms",
        "seed=3203;cswitch-spike:p=0.1,cost=300us",
    };
  }
  if (scenario == "rt") {
    return {
        // Each plan attacks a different deadline path: stolen cycles shrink the
        // schedulable headroom, delayed wakeups push releases toward their deadlines,
        // and jittered clocks perturb the EDF ordering keys.
        "seed=4101;storm:start=2s,end=3s,every=200us,steal=150us",
        "seed=4102;delay-wakeup:p=0.3,delay=5ms",
        "seed=4103;clock-jitter:p=0.5,frac=0.2",
    };
  }
  if (scenario == "rt-inversion") {
    return {
        // A deterministic pin of the low-priority holder every critical section, a
        // probabilistic any-holder pin, and a pin composed with dispatch-cost spikes.
        "seed=4101;priority-inversion:p=1,pin=3ms,thread=0",
        "seed=4102;priority-inversion:p=0.5,pin=5ms",
        "seed=4103;priority-inversion:p=0.3,pin=2ms;cswitch-spike:p=0.1,cost=200us",
    };
  }
  if (scenario == "rt-mem") {
    return {
        // Reclaim episodes squeeze the victim's quanta to 2-10% and tax each of its
        // (now far more numerous) dispatches with an uncharged stall — the
        // working-set thrash that turns a feasible U = 0.2 reservation into a miss
        // storm without changing its declared demand.
        "seed=4201;mem-pressure:every=400ms,duration=350ms,frac=0.98,stall=100us,"
        "thread=0,start=1s,end=6s",
        "seed=4202;mem-pressure:every=500ms,duration=300ms,frac=0.95,stall=150us,"
        "thread=0,start=1s,end=5s",
    };
  }
  if (scenario == "rt-correlated") {
    return {
        // One seed event: an interrupt storm starves the RT leaves into a miss storm
        // while the coupled api-fail burst makes the governor's own mitigation calls
        // fail transiently — mitigation under the same cascade it is mitigating.
        "seed=4301;correlated:at=2s,duration=800ms,every=250us,steal=120us,p=0.8",
    };
  }
  return {
      "seed=1101;drop-wakeup:p=0.2,recovery=25ms",
      "seed=1102;delay-wakeup:p=0.3,delay=5ms",
      "seed=1103;clock-jitter:p=0.5,frac=0.25",
      "seed=1104;cswitch-spike:p=0.1,cost=300us",
      "seed=1105;storm:start=2s,end=3s,every=200us,steal=150us",
      "seed=1106;spurious-wake:every=150ms",
      "seed=1107;crash:at=3s,thread=6",
  };
}

// Structural violation kinds fail the campaign even on faulted runs; fairness gaps
// and deadline misses are tolerated there (a fault may legitimately disturb fairness
// or push an RT job past its deadline).
bool HasHardViolation(const std::vector<hsfault::InvariantChecker::Violation>& vs) {
  for (const auto& v : vs) {
    if (v.kind != hsfault::InvariantChecker::Violation::Kind::kFairnessGap &&
        v.kind != hsfault::InvariantChecker::Violation::Kind::kDeadlineMiss) {
      return true;
    }
  }
  return false;
}

// Results of the rt-mem differential gates, also surfaced in campaign.json.
struct GuardGates {
  bool checked = false;
  uint64_t ungoverned_victim_misses = 0;  // governor-off run, /rt-a
  Time first_miss = -1;                   // governed run, first kDeadlineMiss
  Time demote_time = -1;                  // governed run, first kDemote
  bool demoted_in_window = false;
  bool survivors_miss_free = false;
  double fairness_gap_ns = 0.0;  // §3 gap of /be1 vs /be2 after the demote
  bool fairness_ok = false;
};

// The §3 bound for the two backlogged best-effort siblings (weight 2 each, 1 ms
// quanta) is q/r + q/r = 1 ms of service per unit weight; 5 ms leaves room for
// episode-boundary discretization while still catching a broken retag.
constexpr double kGuardFairnessBoundNs = 5.0 * kMillisecond;

// The rt-mem acceptance gates (the governor's reason to exist): with the governor
// OFF the same plan must make the victim leaf miss-storm; with it ON the victim must
// be demoted within one detection window of the window where misses first appeared,
// every surviving RT leaf must finish miss-free, and the fairness gap between the
// backlogged best-effort siblings must stay within bound after the demote. Returns
// the number of failed gates.
int CheckGuardGates(const FaultPlan& plan, const RunResult& governed, Time duration,
                    int ncpus, GuardGates& out, std::string& sout,
                    std::string& serr) {
  int failures = 0;
  out.checked = true;

  // Governor-off differential: if the victim survives the fault untreated, the
  // governed run proves nothing and the scenario has gone stale.
  const RunResult off =
      RunGuard(plan, duration, ncpus, /*governed=*/false, /*gate_governor=*/false);
  htrace::TraceAnalyzer off_an(off.events, off.dropped);
  const auto off_victim = off_an.NodeByPath("/rt-a");
  for (const auto& leaf : off_an.PerLeafRtStats()) {
    if (off_victim.ok() && leaf.leaf == *off_victim) {
      out.ungoverned_victim_misses = leaf.misses;
    }
  }
  if (out.ungoverned_victim_misses == 0) {
    Append(serr,
           "FAIL: governor-off run missed no deadlines on /rt-a (fault too "
           "weak to need mitigation)\n");
    ++failures;
  } else {
    Append(sout, "governor off: /rt-a missed %llu deadlines untreated\n",
           static_cast<unsigned long long>(out.ungoverned_victim_misses));
  }

  htrace::TraceAnalyzer an(governed.events, governed.dropped);
  for (const auto& e : governed.events) {
    if (e.type == htrace::EventType::kDeadlineMiss) {
      out.first_miss = e.time;
      break;
    }
  }
  uint32_t demoted_node = UINT32_MAX;
  for (const auto& g : an.GovernorActions()) {
    if (g.action == htrace::GovernAction::kDemote) {
      out.demote_time = g.time;
      demoted_node = g.node;
      break;
    }
  }
  // "Within one detection window": the governor ticks once per window, so the miss
  // must be answered no later than the end of the window after the one it fell in.
  const Time window = hguard::OverloadGovernor::Config{}.window;
  const Time first_bad_window_end =
      out.first_miss < 0 ? -1 : ((out.first_miss + window - 1) / window) * window;
  out.demoted_in_window = out.first_miss >= 0 && out.demote_time >= 0 &&
                          out.demote_time <= first_bad_window_end + window;
  if (!out.demoted_in_window) {
    Append(serr,
           "FAIL: governed run did not demote within one detection window "
           "(first miss t=%lld, demote t=%lld)\n",
           static_cast<long long>(out.first_miss),
           static_cast<long long>(out.demote_time));
    ++failures;
  } else {
    Append(sout, "governed: demote at t=%.3fs, %.0fms after the first miss\n",
           hscommon::ToSeconds(out.demote_time),
           static_cast<double>(out.demote_time - out.first_miss) / kMillisecond);
  }

  // Surviving RT leaves (everything but the demoted victim) finish miss-free.
  out.survivors_miss_free = true;
  for (const auto& leaf : an.PerLeafRtStats()) {
    if (leaf.leaf == demoted_node) continue;
    if (leaf.misses != 0) {
      out.survivors_miss_free = false;
      Append(serr, "FAIL: surviving RT leaf %s missed %llu deadlines\n",
             an.nodes().count(leaf.leaf) != 0
                 ? an.nodes().at(leaf.leaf).path.c_str()
                 : "?",
             static_cast<unsigned long long>(leaf.misses));
      ++failures;
    }
  }
  if (out.survivors_miss_free) {
    Append(sout, "governed: surviving RT leaves finished miss-free\n");
  }

  // §3 fairness of the backlogged best-effort siblings over the post-demote window.
  const auto be1 = an.NodeByPath("/be1");
  const auto be2 = an.NodeByPath("/be2");
  if (be1.ok() && be2.ok() && out.demote_time >= 0) {
    out.fairness_gap_ns = an.FairnessGap(*be1, *be2, out.demote_time, duration);
    out.fairness_ok = out.fairness_gap_ns <= kGuardFairnessBoundNs;
  }
  if (!out.fairness_ok) {
    Append(serr,
           "FAIL: post-demote fairness gap of /be1 vs /be2 is %.0f us "
           "(bound %.0f us)\n",
           out.fairness_gap_ns / 1000.0, kGuardFairnessBoundNs / 1000.0);
    ++failures;
  } else {
    Append(sout, "governed: post-demote be fairness gap %.0f us (bound %.0f us)\n",
           out.fairness_gap_ns / 1000.0, kGuardFairnessBoundNs / 1000.0);
  }
  return failures;
}

// --- campaign.json (the CI-schema-checked summary) ---

struct FaultRecord {
  std::string spec;
  bool deterministic = false;
  bool hard_violation = true;
  size_t events = 0;
  size_t violations = 0;
  GuardGates gates;
};

struct ScenarioRecord {
  std::string name;
  int cpus = 1;
  size_t baseline_events = 0;
  bool baseline_clean = false;
  std::vector<FaultRecord> faults;
};

const char* Bool(bool b) { return b ? "true" : "false"; }

// Hand-rolled writer (the repo carries no JSON library); every string written here
// is a pinned scenario name or spec string with no characters needing escapes.
bool WriteCampaignJson(const std::string& path, Time duration, int failures,
                       const std::vector<ScenarioRecord>& scenarios) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"version\": 1,\n  \"duration_s\": %.3f,\n",
               hscommon::ToSeconds(duration));
  std::fprintf(f, "  \"failures\": %d,\n  \"scenarios\": [", failures);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioRecord& s = scenarios[i];
    std::fprintf(f,
                 "%s\n    {\n      \"name\": \"%s\",\n      \"cpus\": %d,\n"
                 "      \"baseline_events\": %zu,\n      \"baseline_clean\": %s,\n"
                 "      \"faults\": [",
                 i == 0 ? "" : ",", s.name.c_str(), s.cpus, s.baseline_events,
                 Bool(s.baseline_clean));
    for (size_t j = 0; j < s.faults.size(); ++j) {
      const FaultRecord& r = s.faults[j];
      std::fprintf(f,
                   "%s\n        {\n          \"spec\": \"%s\",\n"
                   "          \"deterministic\": %s,\n"
                   "          \"hard_violation\": %s,\n"
                   "          \"events\": %zu,\n          \"violations\": %zu",
                   j == 0 ? "" : ",", r.spec.c_str(), Bool(r.deterministic),
                   Bool(r.hard_violation), r.events, r.violations);
      if (r.gates.checked) {
        std::fprintf(
            f,
            ",\n          \"gates\": {\n"
            "            \"ungoverned_victim_misses\": %llu,\n"
            "            \"demoted_in_window\": %s,\n"
            "            \"survivors_miss_free\": %s,\n"
            "            \"fairness_gap_ns\": %.0f,\n"
            "            \"fairness_ok\": %s\n          }",
            static_cast<unsigned long long>(r.gates.ungoverned_victim_misses),
            Bool(r.gates.demoted_in_window), Bool(r.gates.survivors_miss_free),
            r.gates.fairness_gap_ns, Bool(r.gates.fairness_ok));
      }
      std::fprintf(f, "\n        }");
    }
    std::fprintf(f, "%s]\n    }", s.faults.empty() ? "" : "\n      ");
  }
  std::fprintf(f, "%s]\n}\n", scenarios.empty() ? "" : "\n  ");
  std::fclose(f);
  return true;
}

std::string Flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

// Everything one scenario produces: its summary record, its failure count, and its
// buffered stdout/stderr text. Workers fill these independently; main flushes them
// in scenario order.
struct ScenarioOutcome {
  ScenarioRecord record;
  int failures = 0;
  std::string out;
  std::string err;
};

// The full per-scenario campaign: baseline + invariants, then the fault matrix with
// the determinism oracle, invariant check, guard gates, and blast-radius diff. All
// output goes into the outcome's buffers; the only filesystem writes are the
// per-scenario report files under `out_dir` (distinct names per scenario, so
// concurrent workers never collide).
ScenarioOutcome RunCampaignScenario(const std::string& scenario,
                                    const std::string& fault_flag, Time duration,
                                    int cpus_override, const std::string& out_dir) {
  ScenarioOutcome outcome;
  const int ncpus = cpus_override > 0 ? cpus_override : DefaultCpusFor(scenario);
  Append(outcome.out, "=== scenario %s (%.1fs simulated, %d cpu%s) ===\n",
         scenario.c_str(), hscommon::ToSeconds(duration), ncpus,
         ncpus == 1 ? "" : "s");

  ScenarioRecord& record = outcome.record;
  record.name = scenario;
  record.cpus = ncpus;

  const RunResult baseline = RunScenario(scenario, FaultPlan{}, duration, ncpus);
  {
    hsfault::InvariantChecker checker(CheckerOptionsFor(scenario));
    checker.SetDropped(baseline.dropped);
    for (size_t i = 0; i < baseline.events.size(); ++i) {
      checker.OnEvent(baseline.events[i], i);
    }
    checker.Finish();
    Append(outcome.out, "baseline: %zu events, %s\n", baseline.events.size(),
           checker.Report().c_str());
    record.baseline_events = baseline.events.size();
    record.baseline_clean = checker.clean() && baseline.diagnostics == 0;
    if (!checker.clean()) {
      Append(outcome.err, "FAIL: unfaulted baseline violates invariants\n");
      ++outcome.failures;
      return outcome;
    }
    if (baseline.diagnostics != 0) {
      Append(outcome.err, "FAIL: unfaulted baseline reported %llu diagnostics\n",
             static_cast<unsigned long long>(baseline.diagnostics));
      ++outcome.failures;
      return outcome;
    }
  }

  const std::vector<std::string> matrix =
      fault_flag.empty() ? MatrixFor(scenario) : std::vector<std::string>{fault_flag};
  int index = 0;
  for (const std::string& spec : matrix) {
    ++index;
    FaultRecord fault_record;
    fault_record.spec = spec;
    auto plan = FaultPlan::Parse(spec);
    if (!plan.ok()) {
      Append(outcome.err, "FAIL: bad fault spec '%s': %s\n", spec.c_str(),
             plan.status().ToString().c_str());
      ++outcome.failures;
      record.faults.push_back(fault_record);
      continue;
    }
    Append(outcome.out, "\n--- fault %d: %s ---\n", index, spec.c_str());

    const RunResult run1 = RunScenario(scenario, *plan, duration, ncpus);
    const RunResult run2 = RunScenario(scenario, *plan, duration, ncpus);
    const htrace::TraceDiff determinism = htrace::DiffTraces(run1.events, run2.events);
    fault_record.deterministic = determinism.identical;
    fault_record.events = run1.events.size();
    if (!determinism.identical) {
      Append(outcome.err, "FAIL: faulted run is not deterministic:\n%s\n",
             determinism.description.c_str());
      ++outcome.failures;
      record.faults.push_back(fault_record);
      continue;
    }
    Append(outcome.out, "determinism: two runs byte-identical (%zu events)\n",
           run1.events.size());

    hsfault::InvariantChecker checker(CheckerOptionsFor(scenario));
    checker.SetDropped(run1.dropped);
    for (size_t i = 0; i < run1.events.size(); ++i) {
      checker.OnEvent(run1.events[i], i);
    }
    checker.Finish();
    Append(outcome.out, "invariants: %s\n", checker.Report().c_str());
    fault_record.violations = checker.violations().size();
    fault_record.hard_violation = HasHardViolation(checker.violations());
    if (fault_record.hard_violation) {
      Append(outcome.err, "FAIL: faulted run broke a structural invariant\n");
      ++outcome.failures;
    }

    if (scenario == "rt-mem" || scenario == "rt-correlated") {
      // Operator-facing digest of what the governor did (kGovern events).
      htrace::TraceAnalyzer an(run1.events, run1.dropped);
      const auto actions = an.GovernorActions();
      std::map<std::string, int> by_kind;
      for (const auto& g : actions) ++by_kind[g.name];
      std::string digest;
      for (const auto& [kind, n] : by_kind) {
        digest += (digest.empty() ? "" : ", ") + kind + " x" + std::to_string(n);
      }
      Append(outcome.out, "governor: %zu action(s)%s%s\n", actions.size(),
             digest.empty() ? "" : ": ", digest.c_str());
    }
    if (scenario == "rt-mem") {
      outcome.failures += CheckGuardGates(*plan, run1, duration, ncpus,
                                          fault_record.gates, outcome.out,
                                          outcome.err);
    }

    const hsfault::BlastRadiusReport blast =
        hsfault::AnalyzeBlastRadius(baseline.events, run1.events);
    Append(outcome.out, "%s", hsfault::FormatBlastRadiusReport(blast).c_str());
    if (!out_dir.empty()) {
      const std::string path =
          out_dir + "/" + scenario + "_fault" + std::to_string(index) + ".json";
      const auto written = hsfault::WriteBlastRadiusJson(blast, path);
      if (written.ok()) {
        Append(outcome.out, "(report: %s)\n", path.c_str());
      } else {
        Append(outcome.err, "cannot write %s: %s\n", path.c_str(),
               written.ToString().c_str());
      }
    }
    record.faults.push_back(fault_record);
  }
  Append(outcome.out, "\n");
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario_flag = Flag(argc, argv, "scenario");
  const std::string fault_flag = Flag(argc, argv, "fault");
  const std::string out_dir = Flag(argc, argv, "out");
  Time duration = 8 * kSecond;
  if (const std::string d = Flag(argc, argv, "duration"); !d.empty()) {
    auto parsed = hsfault::ParseDuration(d);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --duration: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    duration = *parsed;
  }

  int cpus_override = 0;  // 0 = per-scenario default
  if (const std::string c = Flag(argc, argv, "cpus"); !c.empty()) {
    cpus_override = std::atoi(c.c_str());
    if (cpus_override < 1 || cpus_override > 64) {
      std::fprintf(stderr, "bad --cpus=%s (want 1..64)\n", c.c_str());
      return 2;
    }
  }

  const std::vector<std::string> known = {"fig8",         "churn",  "smp4",
                                          "smp4-sharded", "rt",     "rt-inversion",
                                          "rt-mem",       "rt-correlated"};
  std::vector<std::string> scenarios;
  if (scenario_flag.empty() || scenario_flag == "all") {
    scenarios = known;
  } else if (std::find(known.begin(), known.end(), scenario_flag) != known.end()) {
    scenarios = {scenario_flag};
  } else {
    std::fprintf(stderr,
                 "unknown --scenario=%s (want fig8, churn, smp4, smp4-sharded, rt, "
                 "rt-inversion, rt-mem, rt-correlated, or all)\n",
                 scenario_flag.c_str());
    return 2;
  }

  int jobs = 1;
  if (const std::string j = Flag(argc, argv, "jobs"); !j.empty()) {
    jobs = std::atoi(j.c_str());
    if (jobs < 1 || jobs > 64) {
      std::fprintf(stderr, "bad --jobs=%s (want 1..64)\n", j.c_str());
      return 2;
    }
  }

  // Every scenario runs through the same buffered path regardless of --jobs, and
  // buffers are flushed in scenario order, so --jobs=N output is byte-identical
  // to --jobs=1. Scenarios are fully isolated (each Run* builds its own
  // System + Tracer); the registries are read-only after first use.
  std::vector<ScenarioOutcome> outcomes(scenarios.size());
  const size_t nworkers =
      std::min<size_t>(static_cast<size_t>(jobs), scenarios.size());
  if (nworkers <= 1) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      outcomes[i] = RunCampaignScenario(scenarios[i], fault_flag, duration,
                                        cpus_override, out_dir);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(nworkers);
    for (size_t w = 0; w < nworkers; ++w) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < scenarios.size();
             i = next.fetch_add(1)) {
          outcomes[i] = RunCampaignScenario(scenarios[i], fault_flag, duration,
                                            cpus_override, out_dir);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }

  int failures = 0;
  std::vector<ScenarioRecord> report;
  for (ScenarioOutcome& outcome : outcomes) {
    std::fwrite(outcome.out.data(), 1, outcome.out.size(), stdout);
    std::fwrite(outcome.err.data(), 1, outcome.err.size(), stderr);
    failures += outcome.failures;
    report.push_back(std::move(outcome.record));
  }

  if (!out_dir.empty()) {
    const std::string path = out_dir + "/campaign.json";
    if (WriteCampaignJson(path, duration, failures, report)) {
      std::printf("(campaign report: %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "fault campaign FAILED: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("fault campaign passed\n");
  return 0;
}
