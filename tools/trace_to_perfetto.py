#!/usr/bin/env python3
"""Standalone reader for hsched binary scheduling traces (src/trace).

Subcommands:
  convert <in.trace> <out.json>   binary trace -> Chrome/Perfetto trace_event JSON
  dump <in.trace> [-n N]          print the first N events as text
  check <in.json> [--min-tracks N]
                                  json.load a C++ exported file and sanity-check the
                                  track structure (used by CI)
  roundtrip <in.trace> <cpp.json> compare this script's conversion of the binary trace
                                  against the C++ exporter's JSON (same track set)

Only the python standard library is used. The binary format is defined in
src/trace/trace_io.cc: a 32-byte header (magic "HSTRACE1", u32 version, u32 event
size, u64 event count, u64 dropped count) followed by packed 48-byte records
(see src/trace/event.h and docs/observability.md).
"""

import argparse
import json
import struct
import sys

MAGIC = b"HSTRACE1"
VERSION = 1
HEADER = struct.Struct("<8sIIQQ")
# TraceEvent: i64 time, u64 a, i64 b, u32 node, u8 type, u8 flags, char name[16],
# u16 cpu (0 on single-CPU traces).
EVENT = struct.Struct("<qQqIBB16sH")

EVENT_NAMES = [
    "TraceStart", "MakeNode", "RemoveNode", "SetWeight", "AttachThread",
    "DetachThread", "MoveThread", "SetRun", "Sleep", "PickChild", "Schedule",
    "Update", "ThreadName", "Dispatch", "Interrupt", "Idle", "Fault",
    "MoveNode", "Migrate", "Admit", "DeadlineMiss", "Govern",
]
(T_START, T_MKNOD, T_RMNOD, T_SETW, T_ATTACH, T_DETACH, T_MOVE, T_SETRUN,
 T_SLEEP, T_PICK, T_SCHED, T_UPDATE, T_TNAME, T_DISPATCH, T_IRQ, T_IDLE,
 T_FAULT, T_MVNOD, T_MIGRATE, T_ADMIT, T_DLMISS, T_GOVERN) = range(22)


def read_trace(path):
    """Returns (events, dropped); each event is a dict."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < HEADER.size:
        raise ValueError(f"{path}: too short for a trace header")
    magic, version, event_size, count, dropped = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    if event_size != EVENT.size:
        raise ValueError(f"{path}: event size {event_size} != {EVENT.size}")
    expected = HEADER.size + count * event_size
    if len(blob) < expected:
        raise ValueError(f"{path}: truncated ({len(blob)} < {expected} bytes)")
    events = []
    for i in range(count):
        time, a, b, node, etype, flags, name, cpu = EVENT.unpack_from(
            blob, HEADER.size + i * event_size)
        events.append({
            "time": time, "a": a, "b": b, "node": node, "type": etype,
            "flags": flags, "name": name.split(b"\0", 1)[0].decode("utf-8", "replace"),
            "cpu": cpu,
        })
    return events, dropped


def event_str(e):
    kind = (EVENT_NAMES[e["type"]]
            if e["type"] < len(EVENT_NAMES) else f"?{e['type']}")
    s = (f"[{e['time'] / 1e6:12.3f} ms] {kind:<12} node={e['node']} "
         f"a={e['a']} b={e['b']} flags={e['flags']}")
    if e["cpu"]:
        s += f" cpu={e['cpu']}"
    if e["name"]:
        s += f" name='{e['name']}'"
    return s


def build_tree(events):
    """(node id -> {path, weight, leaf, parent}, thread names, cpu count);
    mirrors src/trace/reader.cc including MoveNode subtree-path rebuilds."""
    nodes = {0: {"path": "/", "weight": 1, "leaf": False, "parent": None}}
    cpus = 1

    def ensure(nid):
        if nid not in nodes:
            nodes[nid] = {"path": f"node:{nid}", "weight": 0, "leaf": True,
                          "parent": None}

    def rebuild_paths(nid):
        n = nodes[nid]
        if n["parent"] is not None:
            slash = n["path"].rfind("/")
            if slash >= 0:  # placeholder paths have no component to carry over
                parent_path = nodes[n["parent"]]["path"]
                prefix = "" if parent_path == "/" else parent_path
                n["path"] = prefix + n["path"][slash:]
        for cid, child in nodes.items():
            if cid != nid and child["parent"] == nid:
                rebuild_paths(cid)

    thread_names = {}
    for e in events:
        if e["type"] == T_START:
            if e["b"] > 1:
                cpus = e["b"]
        elif e["type"] == T_MKNOD:
            ensure(e["a"])
            parent = nodes[e["a"]]["path"]
            prefix = "" if parent == "/" else parent
            nodes[e["node"]] = {
                "path": f"{prefix}/{e['name']}", "weight": e["b"],
                "leaf": bool(e["flags"]), "parent": e["a"],
            }
        elif e["type"] == T_MVNOD:
            ensure(e["node"])
            ensure(e["a"])
            nodes[e["node"]]["parent"] = e["a"]
            rebuild_paths(e["node"])
        elif e["type"] in (T_SETRUN, T_SLEEP, T_PICK, T_SCHED, T_UPDATE,
                           T_ATTACH, T_DETACH, T_MOVE, T_SETW, T_ADMIT,
                           T_DLMISS, T_GOVERN):
            ensure(e["node"])
        if e["type"] in (T_TNAME, T_ATTACH) and e["name"]:
            thread_names[e["a"]] = e["name"]
        elif e["type"] == T_TNAME:
            thread_names.setdefault(e["a"], f"t{e['a']}")
    return nodes, thread_names, cpus


def to_perfetto(events):
    """Chrome trace_event JSON (dict) for the given decoded events."""
    nodes, thread_names, cpus = build_tree(events)
    smp = cpus > 1
    out = [{"ph": "M", "pid": 1, "name": "process_name",
            "args": {"name": "hsched"}}]
    if smp:
        # One track per CPU in a second process, matching the C++ exporter.
        out.append({"ph": "M", "pid": 2, "name": "process_name",
                    "args": {"name": "hsched cpus"}})
        for cpu in range(cpus):
            out.append({"ph": "M", "pid": 2, "tid": cpu, "name": "thread_name",
                        "args": {"name": f"cpu{cpu}"}})
            out.append({"ph": "M", "pid": 2, "tid": cpu,
                        "name": "thread_sort_index",
                        "args": {"sort_index": cpu}})
    for nid in sorted(nodes):
        out.append({"ph": "M", "pid": 1, "tid": nid, "name": "thread_name",
                    "args": {"name": nodes[nid]["path"]}})
        out.append({"ph": "M", "pid": 1, "tid": nid, "name": "thread_sort_index",
                    "args": {"sort_index": nid}})
    # One dispatch can be in flight per CPU, so pair Schedule/Update by the
    # recording CPU (the merged SMP stream interleaves slices of different CPUs).
    open_slice = {}  # cpu -> (start ns, thread, leaf node)
    for e in events:
        if e["type"] == T_SCHED:
            open_slice[e["cpu"]] = (e["time"], e["a"], e["node"])
        elif e["type"] == T_UPDATE and e["cpu"] in open_slice:
            start, thread, _node = open_slice.pop(e["cpu"])
            if thread != e["a"]:
                start = e["time"] - e["b"]  # mismatched pairing: used-as-duration
            label = thread_names.get(e["a"], f"t{e['a']}")
            out.append({"ph": "X", "pid": 1, "tid": e["node"], "name": label,
                        "cat": "dispatch", "ts": start / 1e3,
                        "dur": max(e["time"] - start, 0) / 1e3,
                        "args": {"thread": e["a"], "service_ns": e["b"]}})
            if smp:
                out.append({"ph": "X", "pid": 2, "tid": e["cpu"], "name": label,
                            "cat": "dispatch", "ts": start / 1e3,
                            "dur": max(e["time"] - start, 0) / 1e3,
                            "args": {"thread": e["a"], "node": e["node"]}})
        elif e["type"] == T_IDLE and smp:
            out.append({"ph": "X", "pid": 2, "tid": e["cpu"], "name": "idle",
                        "cat": "idle", "ts": e["time"] / 1e3,
                        "dur": e["b"] / 1e3})
        elif e["type"] == T_MIGRATE and smp:
            # Shard migration: instant on the destination CPU's track
            # (node=leaf, a=source CPU, b=destination CPU, flags bit0=steal,
            # bit1=rehomed), matching the C++ exporter.
            kind = "steal" if e["flags"] & 1 else "rebalance"
            out.append({"ph": "i", "pid": 2, "tid": e["cpu"], "s": "t",
                        "name": f"{kind} node {e['node']}",
                        "ts": e["time"] / 1e3,
                        "args": {"node": e["node"], "from_cpu": e["a"],
                                 "to_cpu": e["b"],
                                 "rehomed": bool(e["flags"] & 2)}})
        elif e["type"] == T_SETRUN:
            label = thread_names.get(e["a"], f"t{e['a']}")
            out.append({"ph": "i", "pid": 1, "tid": e["node"], "s": "t",
                        "name": f"wake {label}", "ts": e["time"] / 1e3})
        elif e["type"] == T_ADMIT:
            # Admission probe on the leaf's track (node=leaf, a=thread,
            # b=would-be utilization ppm, flags bit0=accepted, name=scheduler).
            label = thread_names.get(e["a"], f"t{e['a']}")
            verdict = "ok" if e["flags"] & 1 else "REJECT"
            out.append({"ph": "i", "pid": 1, "tid": e["node"], "s": "t",
                        "name": f"admit {verdict} {label}",
                        "ts": e["time"] / 1e3,
                        "args": {"thread": e["a"], "scheduler": e["name"],
                                 "accepted": bool(e["flags"] & 1),
                                 "utilization_ppm": e["b"]}})
        elif e["type"] == T_DLMISS:
            # Process-scoped like faults: the headline RT failure signal.
            label = thread_names.get(e["a"], f"t{e['a']}")
            out.append({"ph": "i", "pid": 1, "tid": 0, "s": "p",
                        "name": f"deadline-miss {label}",
                        "ts": e["time"] / 1e3,
                        "args": {"thread": e["a"], "node": e["node"],
                                 "tardiness_ns": e["b"]}})
        elif e["type"] == T_GOVERN:
            # Process-scoped like faults: a governor mitigation (demote/revoke/
            # throttle/restore/backoff) changes machine policy for every track.
            out.append({"ph": "i", "pid": 1, "tid": 0, "s": "p",
                        "name": f"govern:{e['name']}",
                        "ts": e["time"] / 1e3,
                        "args": {"node": e["node"], "arg": e["a"],
                                 "magnitude": e["b"]}})
    return {"displayTimeUnit": "ms", "traceEvents": out}


def track_names(doc):
    return sorted(e["args"]["name"] for e in doc["traceEvents"]
                  if e.get("name") == "thread_name")


def cmd_convert(args):
    events, dropped = read_trace(args.trace)
    doc = to_perfetto(events)
    with open(args.json, "w") as f:
        json.dump(doc, f)
    print(f"{args.json}: {len(doc['traceEvents'])} trace events from "
          f"{len(events)} records ({dropped} dropped at record time)")


def cmd_dump(args):
    events, dropped = read_trace(args.trace)
    for e in events[:args.n]:
        print(event_str(e))
    print(f"-- {len(events)} events, {dropped} dropped --")


def cmd_check(args):
    with open(args.json) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        sys.exit(f"{args.json}: no traceEvents array")
    tracks = track_names(doc)
    if len(tracks) != len(set(tracks)):
        sys.exit(f"{args.json}: duplicate track names: {tracks}")
    if len(tracks) < args.min_tracks:
        sys.exit(f"{args.json}: {len(tracks)} tracks, expected >= {args.min_tracks}")
    slices = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    bad = [e for e in doc["traceEvents"]
           if e.get("ph") == "X" and (e["dur"] < 0 or e["ts"] < 0)]
    if bad:
        sys.exit(f"{args.json}: {len(bad)} slices with negative ts/dur")
    print(f"{args.json}: OK — {len(tracks)} tracks "
          f"({', '.join(tracks)}), {slices} dispatch slices")


def cmd_roundtrip(args):
    events, _ = read_trace(args.trace)
    mine = track_names(to_perfetto(events))
    with open(args.json) as f:
        theirs = track_names(json.load(f))
    if mine != theirs:
        sys.exit(f"track mismatch:\n  python: {mine}\n  c++:    {theirs}")
    print(f"roundtrip OK — both exporters agree on {len(mine)} tracks")


def main():
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)
    c = sub.add_parser("convert", help="binary trace -> perfetto json")
    c.add_argument("trace")
    c.add_argument("json")
    c.set_defaults(fn=cmd_convert)
    d = sub.add_parser("dump", help="print events as text")
    d.add_argument("trace")
    d.add_argument("-n", type=int, default=50)
    d.set_defaults(fn=cmd_dump)
    k = sub.add_parser("check", help="validate a C++-exported json file")
    k.add_argument("json")
    k.add_argument("--min-tracks", type=int, default=2)
    k.set_defaults(fn=cmd_check)
    r = sub.add_parser("roundtrip", help="compare python vs C++ conversion")
    r.add_argument("trace")
    r.add_argument("json")
    r.set_defaults(fn=cmd_roundtrip)
    args = p.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
