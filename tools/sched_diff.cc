// Differential scheduler comparison (CI's `synth-roundtrip` and `rt-determinism`
// jobs, and the §6-style what-if tool).
//
// Takes a scenario from ONE of two sources:
//   * --trace=<file>: an HSTRACE1 capture, fitted to a workload scenario per thread
//     (src/synth), or
//   * --scenario=<name>: a built-in real-time scenario pack (src/rt/scenario_pack:
//     videoconf, audio) with deadline-stamped periodic threads,
// and either runs it under TWO scheduler configurations and reports the diff
// (default), or under ONE configuration gated on the invariant checker (--check).
//
// Usage:
//   sched_diff (--trace=<file.trace> | --scenario=<name>) --a=<sched> [--b=<sched>]
//              [--cpus=N | --cpus-a=N --cpus-b=N]
//              [--sharded | --sharded-a --sharded-b] [--steal=on|off]
//              [--mode=exact|histogram] [--anchor=relative|absolute] [--seed=N]
//              [--duration=<dur>] [--fault=<spec>] [--out=<report.json>]
//              [--check] [--quiet]
//
// Scheduler names come from src/sched/registry.h (sfq, ts_svr4, rr, fifo, edf, rma,
// rma:exact, fair:<algo>). With --check only --a runs; exit status 1 means the
// invariant checker (including the §3 fairness-gap bound) found violations on the
// replayed trace. On --scenario runs the report's per-leaf deadline metrics (miss
// rate, tardiness percentiles) carry the comparison; --seed also seeds the pack.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fault/fault_plan.h"
#include "src/rt/scenario_pack.h"
#include "src/sim/scenario.h"
#include "src/synth/sched_diff.h"
#include "src/synth/synthesize.h"
#include "src/trace/reader.h"
#include "src/trace/trace_io.h"

namespace {

std::string Flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool BoolFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      return true;
    }
  }
  return false;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "sched_diff: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = Flag(argc, argv, "trace");
  const std::string rt_scenario = Flag(argc, argv, "scenario");
  if (trace_path.empty() == rt_scenario.empty()) {
    return Fail("exactly one of --trace=<file> or --scenario=<name> is required");
  }
  const std::string sched_a = Flag(argc, argv, "a");
  if (sched_a.empty()) {
    return Fail("--a=<scheduler> is required");
  }
  const bool check_only = BoolFlag(argc, argv, "check");
  const std::string sched_b = Flag(argc, argv, "b");
  if (sched_b.empty() && !check_only) {
    return Fail("--b=<scheduler> is required (or pass --check for a single run)");
  }

  hsynth::SynthOptions synth_options;
  if (const std::string mode = Flag(argc, argv, "mode"); !mode.empty()) {
    if (mode == "exact") {
      synth_options.mode = hsynth::FitMode::kExactReplay;
    } else if (mode == "histogram") {
      synth_options.mode = hsynth::FitMode::kHistogram;
    } else {
      return Fail("--mode must be exact or histogram");
    }
  }
  if (const std::string anchor = Flag(argc, argv, "anchor"); !anchor.empty()) {
    if (anchor == "relative") {
      synth_options.anchor = hsynth::SleepAnchor::kRelative;
    } else if (anchor == "absolute") {
      synth_options.anchor = hsynth::SleepAnchor::kAbsolute;
    } else {
      return Fail("--anchor must be relative or absolute");
    }
  }
  if (const std::string seed = Flag(argc, argv, "seed"); !seed.empty()) {
    synth_options.seed = std::strtoull(seed.c_str(), nullptr, 10);
  }

  hscommon::Time duration = 0;
  if (const std::string d = Flag(argc, argv, "duration"); !d.empty()) {
    auto parsed = hsfault::ParseDuration(d);
    if (!parsed.ok()) {
      return Fail(parsed.status().message());
    }
    duration = *parsed;
  }
  int cpus = 1;
  if (const std::string c = Flag(argc, argv, "cpus"); !c.empty()) {
    cpus = std::atoi(c.c_str());
  }
  int cpus_a = cpus;
  int cpus_b = cpus;
  if (const std::string c = Flag(argc, argv, "cpus-a"); !c.empty()) {
    cpus_a = std::atoi(c.c_str());
  }
  if (const std::string c = Flag(argc, argv, "cpus-b"); !c.empty()) {
    cpus_b = std::atoi(c.c_str());
  }
  // --sharded turns per-CPU run-queue shards on for both sides; --sharded-a/-b for
  // one side only (e.g. shared-tree vs sharded at the same CPU count). --steal=off
  // disables work stealing on sharded sides.
  const bool sharded_both = BoolFlag(argc, argv, "sharded");
  const bool sharded_a = sharded_both || BoolFlag(argc, argv, "sharded-a");
  const bool sharded_b = sharded_both || BoolFlag(argc, argv, "sharded-b");
  bool steal = true;
  if (const std::string s = Flag(argc, argv, "steal"); !s.empty()) {
    if (s == "on") {
      steal = true;
    } else if (s == "off") {
      steal = false;
    } else {
      return Fail("--steal must be on or off");
    }
  }

  const bool quiet = BoolFlag(argc, argv, "quiet");
  hsim::ScenarioSpec spec;
  if (!rt_scenario.empty()) {
    auto made = hrt::MakeRtScenario(rt_scenario, synth_options.seed);
    if (!made.ok()) {
      return Fail(made.status().message());
    }
    spec = *std::move(made);
    if (!quiet) {
      std::printf("rt scenario '%s': %zu nodes, %zu threads (horizon %.3fs, seed "
                  "%llu)\n",
                  rt_scenario.c_str(), spec.nodes.size(), spec.threads.size(),
                  static_cast<double>(spec.horizon) / hscommon::kSecond,
                  static_cast<unsigned long long>(synth_options.seed));
    }
  } else {
    auto file = htrace::ReadTraceFile(trace_path);
    if (!file.ok()) {
      return Fail(file.status().message());
    }
    const htrace::TraceAnalyzer analyzer(file->events, file->dropped);
    auto scenario = hsynth::Synthesize(analyzer, synth_options);
    if (!scenario.ok()) {
      return Fail(scenario.status().message());
    }
    if (!quiet) {
      std::printf("synthesized %zu nodes, %zu threads from %zu events "
                  "(horizon %.3fs, source cpus %d, mode %s)\n",
                  scenario->nodes.size(), scenario->threads.size(),
                  file->events.size(),
                  static_cast<double>(scenario->horizon) / hscommon::kSecond,
                  scenario->source_cpus,
                  synth_options.mode == hsynth::FitMode::kExactReplay ? "exact"
                                                                      : "histogram");
    }
    hsynth::SynthOptions unused;  // seeds already live in each thread's spec
    spec = hsynth::ToScenarioSpec(*scenario, unused);
  }

  const std::string fault_spec = Flag(argc, argv, "fault");
  if (check_only) {
    auto summary = hsynth::ReplayAndCheck(
        spec,
        {.label = "check", .scheduler = sched_a, .cpus = cpus_a, .sharded = sharded_a,
         .steal = steal},
        duration, fault_spec);
    if (!summary.ok()) {
      return Fail(summary.status().message());
    }
    if (!quiet || summary->violations != 0) {
      std::printf("%s\n", summary->checker_report.c_str());
    }
    if (summary->violations != 0) {
      std::fprintf(stderr, "sched_diff: %llu invariant violation(s) on the replay\n",
                   static_cast<unsigned long long>(summary->violations));
      return 1;
    }
    std::printf("replay clean: scheduler=%s cpus=%d events=%llu\n", sched_a.c_str(),
                cpus_a, static_cast<unsigned long long>(summary->events));
    return 0;
  }

  hsynth::SchedDiffOptions options;
  options.a = {.label = "a", .scheduler = sched_a, .cpus = cpus_a,
               .sharded = sharded_a, .steal = steal};
  options.b = {.label = "b", .scheduler = sched_b, .cpus = cpus_b,
               .sharded = sharded_b, .steal = steal};
  options.duration = duration;
  options.fault_spec = fault_spec;
  auto report = hsynth::RunSchedDiff(spec, options);
  if (!report.ok()) {
    return Fail(report.status().message());
  }
  if (!quiet) {
    std::printf("%s", hsynth::FormatSchedDiffReport(*report).c_str());
  }
  if (const std::string out = Flag(argc, argv, "out"); !out.empty()) {
    if (auto status = hsynth::WriteSchedDiffJson(*report, out); !status.ok()) {
      return Fail(status.message());
    }
    if (!quiet) {
      std::printf("wrote %s\n", out.c_str());
    }
  }
  return 0;
}
