// Run one of the built-in real-time scenario packs (src/rt/scenario_pack) under a
// chosen leaf-class scheduler and report the deadline metric family. CI's
// `rt-determinism` job runs this twice with the same seed and byte-compares the
// traces.
//
// Usage:
//   rt_scenario --scenario=videoconf|audio [--sched=<leaf>] [--seed=N] [--cpus=N]
//               [--duration=<dur>] [--quantum=<dur>] [--trace=<base>] [--quiet]
//
// --sched takes any src/sched registry name (default edf; rma, sfq, fair:<algo>, ...).
// --trace=<base> writes <base>.trace (binary HSTRACE1, byte-reproducible) and
// <base>.json (the simulator's per-thread stats, including deadline_jobs /
// deadline_misses / tardiness_max_ns). Exit status is 0 even when deadlines are
// missed — the point of the tool is to measure; gate on the printed miss counts or
// the JSON if you need a verdict.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/fault/fault_plan.h"
#include "src/rt/scenario_pack.h"
#include "src/sched/registry.h"
#include "src/sim/scenario.h"
#include "src/sim/system.h"
#include "src/trace/reader.h"
#include "src/trace/trace_io.h"
#include "src/trace/tracer.h"

using hscommon::kMillisecond;
using hscommon::kSecond;
using hscommon::Time;

namespace {

std::string Flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool BoolFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      return true;
    }
  }
  return false;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "rt_scenario: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario_name = Flag(argc, argv, "scenario");
  if (scenario_name.empty()) {
    std::string valid;
    for (const std::string& n : hrt::RtScenarioNames()) {
      valid += valid.empty() ? n : "|" + n;
    }
    return Fail("--scenario=" + valid + " is required");
  }
  std::string sched = Flag(argc, argv, "sched");
  if (sched.empty()) {
    sched = "edf";
  }
  uint64_t seed = 1;
  if (const std::string s = Flag(argc, argv, "seed"); !s.empty()) {
    seed = std::strtoull(s.c_str(), nullptr, 10);
  }
  int cpus = 1;
  if (const std::string c = Flag(argc, argv, "cpus"); !c.empty()) {
    cpus = std::atoi(c.c_str());
    if (cpus < 1) {
      return Fail("--cpus must be >= 1");
    }
  }
  // RT classes want short non-preemptive quanta: a blocking best-effort slice delays
  // every deadline by up to one quantum.
  Time quantum = 1 * kMillisecond;
  if (const std::string q = Flag(argc, argv, "quantum"); !q.empty()) {
    auto parsed = hsfault::ParseDuration(q);
    if (!parsed.ok()) {
      return Fail(parsed.status().message());
    }
    quantum = *parsed;
  }
  Time duration = 0;
  if (const std::string d = Flag(argc, argv, "duration"); !d.empty()) {
    auto parsed = hsfault::ParseDuration(d);
    if (!parsed.ok()) {
      return Fail(parsed.status().message());
    }
    duration = *parsed;
  }
  const bool quiet = BoolFlag(argc, argv, "quiet");

  auto spec = hrt::MakeRtScenario(scenario_name, seed);
  if (!spec.ok()) {
    return Fail(spec.status().message());
  }
  const Time until = duration > 0 ? duration : spec->horizon;

  const std::string trace_base = Flag(argc, argv, "trace");
  htrace::Tracer tracer(htrace::Tracer::kDefaultCapacity, cpus);
  hsim::System sys(
      hsim::System::Config{.default_quantum = quantum, .ncpus = cpus});
  sys.SetTracer(&tracer);

  auto binding = hsim::BuildScenario(*spec, sched, hleaf::MakeLeafScheduler, sys);
  if (!binding.ok()) {
    return Fail(binding.status().message());
  }
  sys.RunUntil(until);

  const std::vector<htrace::TraceEvent> events = tracer.MergedSnapshot();
  const htrace::TraceAnalyzer analyzer(events, tracer.TotalDropped());
  if (!quiet) {
    std::printf("%s: sched=%s cpus=%d seed=%llu duration=%.3fs events=%zu "
                "service=%.3fs\n",
                scenario_name.c_str(), sched.c_str(), cpus,
                static_cast<unsigned long long>(seed),
                static_cast<double>(until) / kSecond, events.size(),
                static_cast<double>(sys.total_service()) / kSecond);
    for (const auto& s : analyzer.PerLeafRtStats()) {
      const auto node = analyzer.nodes().find(s.leaf);
      const std::string path =
          node != analyzer.nodes().end() ? node->second.path : "node:" +
                                                                   std::to_string(s.leaf);
      std::printf("  %-16s releases=%-6llu misses=%-4llu miss_rate=%5.2f%% "
                  "tardiness p50/p99 us=%lld/%lld\n",
                  path.c_str(), static_cast<unsigned long long>(s.releases),
                  static_cast<unsigned long long>(s.misses), 100.0 * s.miss_rate,
                  static_cast<long long>(
                      htrace::TraceAnalyzer::Percentile(s.tardiness, 50) /
                      hscommon::kMicrosecond),
                  static_cast<long long>(
                      htrace::TraceAnalyzer::Percentile(s.tardiness, 99) /
                      hscommon::kMicrosecond));
    }
  }

  if (!trace_base.empty()) {
    if (auto status = htrace::WriteTraceFile(tracer, trace_base + ".trace");
        !status.ok()) {
      return Fail(status.message());
    }
    if (auto status = sys.WriteStatsJson(trace_base + ".json"); !status.ok()) {
      return Fail(status.message());
    }
    if (!quiet) {
      std::printf("wrote %s.trace and %s.json\n", trace_base.c_str(),
                  trace_base.c_str());
    }
  }
  return 0;
}
